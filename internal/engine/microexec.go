package engine

import (
	"fmt"
	"math"
)

// Micro-instruction layer: the per-AC selective-SIMD programs the
// compiler "generates the micro-instructions for both ACs and AUs"
// step (§6.2) produces. A macro Program lowers (Lower) to streams of
// MicroInstr, each an AC-level instruction carrying an 8-bit AU enable
// mask — the collective-instruction technique of §5.2 where "the AC
// controller processes the instruction and sends control signals to
// all the AUs".
//
// The canonical layout maps scratchpad word w to
// (AC (w/8) mod ACs, AU w mod 8, local address w/(8*ACs)); a lowered
// instruction addresses the same local word on every enabled AU.
// Operand patterns that stay lane-aligned lower to wide SIMD steps;
// everything else falls back to serialized bus transfers, exactly the
// locality/communication trade the paper's scheduler optimizes.
//
// MicroMachine executes lowered programs functionally; tests validate
// it bit-for-bit-tolerant against the macro Machine, proving the
// lowering preserves semantics.

// MRKind discriminates micro operand sources.
type MRKind uint8

const (
	MRNone  MRKind = iota
	MRLocal        // this AU's local scratch word
	MRBus          // the value latched on the shared bus
	MRImm          // an immediate float32 (identity constants)
)

// MicroRef is one micro operand.
type MicroRef struct {
	Kind  MRKind
	Local int     // MRLocal
	Imm   float32 // MRImm
}

func (r MicroRef) String() string {
	switch r.Kind {
	case MRLocal:
		return fmt.Sprintf("m[%d]", r.Local)
	case MRBus:
		return "bus"
	case MRImm:
		return fmt.Sprintf("#%g", r.Imm)
	default:
		return "_"
	}
}

// MicroKind discriminates micro instruction classes.
type MicroKind uint8

const (
	MCompute MicroKind = iota // AC-level selective-SIMD ALU op
	MBusLoad                  // latch word (AC, AU, local) onto the bus
	MGather                   // memory-controller row gather (macro passthrough)
	MScatter                  // memory-controller row scatter
)

// MicroInstr is one AC-level instruction.
type MicroInstr struct {
	Kind MicroKind

	// MCompute:
	AC   int   // target analytic cluster
	Op   AluOp //
	Mask uint8 // enabled AUs
	Dst  int   // local destination word
	A, B MicroRef

	// MBusLoad:
	SrcAC, SrcAU, SrcLocal int

	// MGather/MScatter (copied from the macro instruction):
	Macro Instr
}

func (mi MicroInstr) String() string {
	switch mi.Kind {
	case MCompute:
		return fmt.Sprintf("ac%d.%s mask=%08b m[%d] <- %s, %s", mi.AC, mi.Op, mi.Mask, mi.Dst, mi.A, mi.B)
	case MBusLoad:
		return fmt.Sprintf("bus <- ac%d/au%d m[%d]", mi.SrcAC, mi.SrcAU, mi.SrcLocal)
	case MGather:
		return fmt.Sprintf("mc.%s", mi.Macro)
	case MScatter:
		return fmt.Sprintf("mc.%s", mi.Macro)
	default:
		return "?"
	}
}

// MicroProgram is the lowered form of a Program for one configuration.
type MicroProgram struct {
	Cfg   Config
	Prog  *Program // the ALIGNED macro program (slot map, merge metadata)
	Slots int      // scratch words including lowering temporaries

	// MapSlot translates a slot of the original (pre-alignment)
	// program into the aligned address space.
	MapSlot func(Slot) Slot

	PerTuple    []MicroInstr
	PostMerge   []MicroInstr
	RowUpdates  []MicroInstr
	Convergence []MicroInstr
}

// lowering context
type microLower struct {
	cfg   Config
	prog  *Program
	extra int // next temporary word (appended after prog.Slots)
	out   *MicroProgram
}

// Lower compiles a macro program into per-AC micro-instruction streams
// for the configuration.
func Lower(p *Program, cfg Config) (*MicroProgram, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Re-base the slot space so every region starts on a lane boundary:
	// the physical layout step the paper's compiler performs when it
	// "maps ... operations to the accelerator architecture". Aligned
	// regions lower to wide selective-SIMD steps instead of serialized
	// bus transfers.
	p = alignProgram(p, cfg.Lanes())
	ml := &microLower{cfg: cfg, prog: p, extra: p.Slots}
	ml.out = &MicroProgram{Cfg: cfg, Prog: p, MapSlot: lastRemap}
	lists := []struct {
		src []Instr
		dst *[]MicroInstr
	}{
		{p.PerTuple, &ml.out.PerTuple},
		{p.PostMerge, &ml.out.PostMerge},
		{p.RowUpdates, &ml.out.RowUpdates},
		{p.Convergence, &ml.out.Convergence},
	}
	for _, l := range lists {
		for _, in := range l.src {
			ops, err := ml.lowerInstr(in)
			if err != nil {
				return nil, err
			}
			*l.dst = append(*l.dst, ops...)
		}
	}
	ml.out.Slots = ml.extra
	return ml.out, nil
}

// alignProgram rewrites the program's slot space so every maximal
// region (a run of overlapping slots — e.g. the input block and the
// per-input sub-slices inside it) starts at a multiple of the lane
// count, preserving all intra-region offsets. The result is an
// equivalent program over a padded scratchpad.
// lastRemap holds the most recent alignment's slot translation; Lower
// copies it into the MicroProgram immediately after alignProgram runs.
var lastRemap = func(s Slot) Slot { return s }

func alignProgram(p *Program, lanes int) *Program {
	lastRemap = func(s Slot) Slot { return s }
	// 1. Collect every referenced interval.
	type iv struct{ lo, hi int }
	var ivs []iv
	add := func(s Slot) {
		if s.Len > 0 {
			ivs = append(ivs, iv{s.Base, s.Base + s.Len})
		}
	}
	addInstr := func(in Instr) {
		add(in.Dst)
		add(in.A)
		add(in.B)
		if in.Kind == KReduce {
			hi := in.A.Base + (in.Dst.Len-1)*in.GStride + (in.GroupSize-1)*in.EStride + 1
			ivs = append(ivs, iv{in.A.Base, hi})
		}
	}
	for _, s := range []Slot{p.ModelSlot, p.InputSlot, p.ConstSlot, p.MergeSrc, p.MergeDst, p.UpdatedSlot, p.ConvSlot} {
		add(s)
	}
	for _, list := range [][]Instr{p.PerTuple, p.PostMerge, p.RowUpdates, p.Convergence} {
		for _, in := range list {
			addInstr(in)
		}
	}
	if len(ivs) == 0 {
		return p
	}
	// 2. Merge overlapping intervals into maximal regions.
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && ivs[j].lo < ivs[j-1].lo; j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
	var regions []iv
	cur := ivs[0]
	for _, v := range ivs[1:] {
		if v.lo < cur.hi { // true overlap extends the region; merely
			// adjacent regions stay separate so each can align
			if v.hi > cur.hi {
				cur.hi = v.hi
			}
			continue
		}
		regions = append(regions, cur)
		cur = v
	}
	regions = append(regions, cur)
	// 3. Assign aligned bases.
	delta := make(map[int]int, len(regions)) // region lo -> shift
	next := 0
	for _, r := range regions {
		base := ceilDiv(next, lanes) * lanes
		delta[r.lo] = base - r.lo
		next = base + (r.hi - r.lo)
	}
	shift := func(addr int) int {
		// Find the region containing addr (regions are sorted, few).
		for _, r := range regions {
			if addr >= r.lo && addr < r.hi {
				return addr + delta[r.lo]
			}
		}
		return addr
	}
	remap := func(s Slot) Slot {
		if s.Len == 0 {
			return s
		}
		return Slot{Base: shift(s.Base), Len: s.Len}
	}
	remapInstr := func(in Instr) Instr {
		in.Dst = remap(in.Dst)
		in.A = remap(in.A)
		in.B = remap(in.B)
		return in
	}
	lastRemap = func(s Slot) Slot {
		if s.Len == 0 {
			return s
		}
		return Slot{Base: shift(s.Base), Len: s.Len}
	}
	out := &Program{
		Slots:       next,
		ModelSlot:   remap(p.ModelSlot),
		InputSlot:   remap(p.InputSlot),
		ConstSlot:   remap(p.ConstSlot),
		Consts:      p.Consts,
		MergeSrc:    remap(p.MergeSrc),
		MergeOp:     p.MergeOp,
		MergeDst:    remap(p.MergeDst),
		UpdatedSlot: remap(p.UpdatedSlot),
		ConvSlot:    remap(p.ConvSlot),
	}
	for _, in := range p.PerTuple {
		out.PerTuple = append(out.PerTuple, remapInstr(in))
	}
	for _, in := range p.PostMerge {
		out.PostMerge = append(out.PostMerge, remapInstr(in))
	}
	for _, in := range p.RowUpdates {
		out.RowUpdates = append(out.RowUpdates, remapInstr(in))
	}
	for _, in := range p.Convergence {
		out.Convergence = append(out.Convergence, remapInstr(in))
	}
	return out
}

// lanes per thread.
func (ml *microLower) lanes() int { return ml.cfg.Lanes() }

// place decomposes word w into (ac, au, local).
func (ml *microLower) place(w int) (ac, au, local int) {
	au = w % ml.cfg.AUsPerAC
	ac = (w / ml.cfg.AUsPerAC) % ml.cfg.ACsPerThread
	local = w / ml.lanes()
	return
}

// alignedRef returns the wave-local reference for operand s feeding a
// destination wave starting at dst element index w*lanes, or ok=false
// when the access pattern is not lane-aligned.
func (ml *microLower) alignedRef(s Slot, dstLen, wave int) (MicroRef, bool) {
	lanes := ml.lanes()
	if s.Len == dstLen && s.Base%lanes == 0 {
		return MicroRef{Kind: MRLocal, Local: s.Base/lanes + wave}, true
	}
	if s.Len%lanes == 0 && s.Base%lanes == 0 && s.Len > 0 {
		// Wrapped but aligned: element i reads s[i mod s.Len], which is
		// the same lane when s.Len is a multiple of the lane count.
		return MicroRef{Kind: MRLocal, Local: s.Base/lanes + wave%(s.Len/lanes)}, true
	}
	return MicroRef{}, false
}

func (ml *microLower) lowerInstr(in Instr) ([]MicroInstr, error) {
	switch in.Kind {
	case KEW:
		return ml.lowerEW(in)
	case KReduce:
		return ml.lowerReduce(in)
	case KGather:
		return []MicroInstr{{Kind: MGather, Macro: in}}, nil
	case KScatter:
		return []MicroInstr{{Kind: MScatter, Macro: in}}, nil
	default:
		return nil, fmt.Errorf("engine: cannot lower %v", in)
	}
}

// busLoadWord emits a bus load of scratch word w.
func (ml *microLower) busLoadWord(w int) MicroInstr {
	ac, au, local := ml.place(w)
	return MicroInstr{Kind: MBusLoad, SrcAC: ac, SrcAU: au, SrcLocal: local}
}

// computeAt emits a single-AU compute at word w.
func (ml *microLower) computeAt(w int, op AluOp, a, b MicroRef) MicroInstr {
	ac, au, local := ml.place(w)
	return MicroInstr{Kind: MCompute, AC: ac, Op: op, Mask: 1 << au, Dst: local, A: a, B: b}
}

func (ml *microLower) lowerEW(in Instr) ([]MicroInstr, error) {
	lanes := ml.lanes()
	unary := in.Op.IsUnary()
	var ops []MicroInstr

	// Scalar operands broadcast once over the bus and stay latched.
	aScalar := in.A.Len == 1
	bScalar := !unary && in.B.Len == 1
	if aScalar {
		ops = append(ops, ml.busLoadWord(in.A.Base))
	}
	// (If both are scalar the bus holds A; B reloads per element below.)

	dstAligned := in.Dst.Base%lanes == 0
	waves := ceilDiv(in.Dst.Len, lanes)
	for w := 0; w < waves; w++ {
		aRef, aOK := ml.alignedRef(in.A, in.Dst.Len, w)
		if aScalar {
			aRef, aOK = MicroRef{Kind: MRBus}, true
		}
		var bRef MicroRef
		bOK := true
		if !unary {
			bRef, bOK = ml.alignedRef(in.B, in.Dst.Len, w)
			if bScalar && !aScalar {
				// B rides the bus instead; latch it once on the first wave.
				if w == 0 {
					ops = append(ops, ml.busLoadWord(in.B.Base))
				}
				bRef, bOK = MicroRef{Kind: MRBus}, true
			}
		}
		if dstAligned && aOK && bOK && !(aScalar && bScalar) {
			// Fast path: one selective-SIMD step per AC in the wave.
			start := w * lanes
			count := in.Dst.Len - start
			if count > lanes {
				count = lanes
			}
			for ac := 0; ac < ml.cfg.ACsPerThread; ac++ {
				var mask uint8
				for au := 0; au < ml.cfg.AUsPerAC; au++ {
					if ac*ml.cfg.AUsPerAC+au < count {
						mask |= 1 << au
					}
				}
				if mask == 0 {
					continue
				}
				ops = append(ops, MicroInstr{
					Kind: MCompute, AC: ac, Op: in.Op, Mask: mask,
					Dst: in.Dst.Base/lanes + w, A: aRef, B: bRef,
				})
			}
			continue
		}
		// Slow path: element-serial bus transfers (misaligned layout).
		start := w * lanes
		end := start + lanes
		if end > in.Dst.Len {
			end = in.Dst.Len
		}
		for i := start; i < end; i++ {
			dstW := in.Dst.Base + i
			var a, b MicroRef
			switch {
			case aScalar:
				a = MicroRef{Kind: MRBus}
				ops = append(ops, ml.busLoadWord(in.A.Base)) // re-latch (bus may have moved)
			default:
				ops = append(ops, ml.busLoadWord(in.A.Base+i%in.A.Len))
				a = MicroRef{Kind: MRBus}
			}
			if unary {
				ops = append(ops, ml.computeAt(dstW, in.Op, a, MicroRef{}))
				continue
			}
			// Stage A into the destination, then combine with B.
			ops = append(ops, ml.computeAt(dstW, AMov, a, MicroRef{}))
			ops = append(ops, ml.busLoadWord(in.B.Base+i%in.B.Len))
			b = MicroRef{Kind: MRBus}
			_, _, local := ml.place(dstW)
			ops = append(ops, ml.computeAt(dstW, in.Op, MicroRef{Kind: MRLocal, Local: local}, b))
		}
	}
	return ops, nil
}

func (ml *microLower) lowerReduce(in Instr) ([]MicroInstr, error) {
	var ops []MicroInstr
	identity := float32(0)
	if in.Op == AMul {
		identity = 1
	}
	lanes := ml.lanes()

	// Fast path: a full contiguous reduction (the dot products at the
	// heart of every GLM update rule). Each AU accumulates a strided
	// partial in parallel, then the bus folds the lane partials into
	// the destination — the per-AU-partials + tree/bus combine shape of
	// §5.2's group-operation mapping.
	if in.Dst.Len == 1 && in.EStride == 1 && in.A.Base%lanes == 0 {
		// Lane-aligned accumulator row (one word per AU).
		accBase := ceilDiv(ml.extra, lanes) * lanes
		ml.extra = accBase + lanes
		accLocal := accBase / lanes
		accRef := MicroRef{Kind: MRLocal, Local: accLocal}
		for ac := 0; ac < ml.cfg.ACsPerThread; ac++ {
			ops = append(ops, MicroInstr{
				Kind: MCompute, AC: ac, Op: AMov, Mask: 0xFF, Dst: accLocal,
				A: MicroRef{Kind: MRImm, Imm: identity},
			})
		}
		waves := ceilDiv(in.GroupSize, lanes)
		for w := 0; w < waves; w++ {
			start := w * lanes
			count := in.GroupSize - start
			if count > lanes {
				count = lanes
			}
			for ac := 0; ac < ml.cfg.ACsPerThread; ac++ {
				var mask uint8
				for au := 0; au < ml.cfg.AUsPerAC; au++ {
					if ac*ml.cfg.AUsPerAC+au < count {
						mask |= 1 << au
					}
				}
				if mask == 0 {
					continue
				}
				ops = append(ops, MicroInstr{
					Kind: MCompute, AC: ac, Op: in.Op, Mask: mask, Dst: accLocal,
					A: accRef, B: MicroRef{Kind: MRLocal, Local: in.A.Base/lanes + w},
				})
			}
		}
		// Fold the lane partials into the destination over the bus.
		dstW := in.Dst.Base
		_, _, dstLocal := ml.place(dstW)
		ops = append(ops, ml.busLoadWord(accBase))
		ops = append(ops, ml.computeAt(dstW, AMov, MicroRef{Kind: MRBus}, MicroRef{}))
		for lane := 1; lane < lanes; lane++ {
			ops = append(ops, ml.busLoadWord(accBase+lane))
			ops = append(ops, ml.computeAt(dstW, in.Op,
				MicroRef{Kind: MRLocal, Local: dstLocal}, MicroRef{Kind: MRBus}))
		}
		return ops, nil
	}

	// Group-serial lowering through the bus: initialize each group's
	// destination to the identity, then fold every element in. (The
	// macro cycle model separately accounts the parallel-tree timing;
	// the micro form is the semantics-bearing schedule.)
	for g := 0; g < in.Dst.Len; g++ {
		dstW := in.Dst.Base + g
		ops = append(ops, ml.computeAt(dstW, AMov, MicroRef{Kind: MRImm, Imm: identity}, MicroRef{}))
		_, _, dstLocal := ml.place(dstW)
		for e := 0; e < in.GroupSize; e++ {
			src := in.A.Base + g*in.GStride + e*in.EStride
			ops = append(ops, ml.busLoadWord(src))
			ops = append(ops, ml.computeAt(dstW, in.Op,
				MicroRef{Kind: MRLocal, Local: dstLocal}, MicroRef{Kind: MRBus}))
		}
	}
	return ops, nil
}

// --- Micro machine -----------------------------------------------------

// MicroMachine executes a lowered program on one thread, used to
// validate the lowering against the macro Machine.
type MicroMachine struct {
	MP      *MicroProgram
	scratch []float32
	bus     float32
}

// NewMicroMachine instantiates the micro-level simulator.
func NewMicroMachine(mp *MicroProgram) *MicroMachine {
	m := &MicroMachine{MP: mp, scratch: make([]float32, mp.Slots)}
	p := mp.Prog
	copy(m.scratch[p.ConstSlot.Base:p.ConstSlot.Base+p.ConstSlot.Len], p.Consts)
	return m
}

// wordOf maps (ac, au, local) back to a flat scratch word.
func (m *MicroMachine) wordOf(ac, au, local int) int {
	return local*m.MP.Cfg.Lanes() + ac*m.MP.Cfg.AUsPerAC + au
}

// SetModel loads model parameters.
func (m *MicroMachine) SetModel(vals []float32) error {
	s := m.MP.Prog.ModelSlot
	if len(vals) != s.Len {
		return fmt.Errorf("engine: model has %d parameters, got %d", s.Len, len(vals))
	}
	copy(m.scratch[s.Base:s.Base+s.Len], vals)
	return nil
}

// Model returns a copy of the model parameters.
func (m *MicroMachine) Model() []float32 {
	s := m.MP.Prog.ModelSlot
	out := make([]float32, s.Len)
	copy(out, m.scratch[s.Base:s.Base+s.Len])
	return out
}

// LoadTuple places a tuple into the input region.
func (m *MicroMachine) LoadTuple(tuple []float32) error {
	s := m.MP.Prog.InputSlot
	if len(tuple) != s.Len {
		return fmt.Errorf("engine: tuple width %d, input region %d", len(tuple), s.Len)
	}
	copy(m.scratch[s.Base:s.Base+s.Len], tuple)
	return nil
}

func (m *MicroMachine) resolve(r MicroRef, ac, au int) float32 {
	switch r.Kind {
	case MRLocal:
		return m.scratch[m.wordOf(ac, au, r.Local)]
	case MRBus:
		return m.bus
	case MRImm:
		return r.Imm
	default:
		return 0
	}
}

// Exec runs one micro-instruction list.
func (m *MicroMachine) Exec(list []MicroInstr) error {
	p := m.MP.Prog
	for _, mi := range list {
		switch mi.Kind {
		case MBusLoad:
			m.bus = m.scratch[m.wordOf(mi.SrcAC, mi.SrcAU, mi.SrcLocal)]
		case MCompute:
			for au := 0; au < m.MP.Cfg.AUsPerAC; au++ {
				if mi.Mask&(1<<au) == 0 {
					continue
				}
				a := m.resolve(mi.A, mi.AC, au)
				var b float32
				if !mi.Op.IsUnary() {
					b = m.resolve(mi.B, mi.AC, au)
				}
				m.scratch[m.wordOf(mi.AC, au, mi.Dst)] = alu(mi.Op, a, b)
			}
		case MGather:
			in := mi.Macro
			idx := int(math.Round(float64(m.scratch[in.A.Base])))
			rows := p.ModelSlot.Len / in.RowLen
			if idx < 0 || idx >= rows {
				return fmt.Errorf("engine: micro gather row %d outside model of %d rows", idx, rows)
			}
			src := p.ModelSlot.Base + idx*in.RowLen
			copy(m.scratch[in.Dst.Base:in.Dst.Base+in.RowLen], m.scratch[src:src+in.RowLen])
		case MScatter:
			in := mi.Macro
			idx := int(math.Round(float64(m.scratch[in.B.Base])))
			rows := p.ModelSlot.Len / in.RowLen
			if idx < 0 || idx >= rows {
				return fmt.Errorf("engine: micro scatter row %d outside model of %d rows", idx, rows)
			}
			dst := p.ModelSlot.Base + idx*in.RowLen
			copy(m.scratch[dst:dst+in.RowLen], m.scratch[in.A.Base:in.A.Base+in.RowLen])
		default:
			return fmt.Errorf("engine: invalid micro kind %d", mi.Kind)
		}
	}
	return nil
}

// RunTuple executes the per-tuple stage (plus row updates and, when no
// merge exists, the model write-back) for one tuple — the
// single-threaded SGD path mirroring Machine.RunBatch.
func (m *MicroMachine) RunTuple(tuple []float32) error {
	p := m.MP.Prog
	if err := m.LoadTuple(tuple); err != nil {
		return err
	}
	if err := m.Exec(m.MP.PerTuple); err != nil {
		return err
	}
	if err := m.Exec(m.MP.RowUpdates); err != nil {
		return err
	}
	if p.HasMerge() {
		// Single-thread merge batch of one: the merged value is the
		// per-tuple value itself.
		copy(m.scratch[p.MergeDst.Base:p.MergeDst.Base+p.MergeDst.Len],
			m.scratch[p.MergeSrc.Base:p.MergeSrc.Base+p.MergeSrc.Len])
		if err := m.Exec(m.MP.PostMerge); err != nil {
			return err
		}
	}
	if p.UpdatedSlot.Len > 0 {
		copy(m.scratch[p.ModelSlot.Base:p.ModelSlot.Base+p.ModelSlot.Len],
			m.scratch[p.UpdatedSlot.Base:p.UpdatedSlot.Base+p.UpdatedSlot.Len])
	}
	return nil
}

// Count returns the total micro-instruction count per stage.
func (mp *MicroProgram) Count() (perTuple, postMerge, conv int) {
	return len(mp.PerTuple) + len(mp.RowUpdates), len(mp.PostMerge), len(mp.Convergence)
}
