package dana

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (run `go test -bench=. -benchmem`). The figure benchmarks
// execute the full modeling pipeline (DSL -> hDFG -> compile -> hwgen
// -> cost model) every iteration and report the headline numbers the
// paper reports as custom metrics (e.g. geomean speedups). Component
// benchmarks at the bottom measure the real throughput of the
// simulators themselves.

import (
	"fmt"
	"testing"

	"dana/internal/accessengine"
	"dana/internal/bufpool"
	"dana/internal/catalog"
	"dana/internal/compiler"
	"dana/internal/datagen"
	"dana/internal/engine"
	"dana/internal/experiments"
	"dana/internal/hdfg"
	"dana/internal/madlib"
	"dana/internal/sql"
	"dana/internal/storage"
	"dana/internal/strider"
)

// --- Tables ------------------------------------------------------------

func BenchmarkTable3DatasetInventory(b *testing.B) {
	env := experiments.DefaultEnv()
	var pages int
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3(env)
		pages = 0
		for _, r := range rows {
			pages += r.Pages32K
		}
	}
	b.ReportMetric(float64(pages), "total-32k-pages")
}

func BenchmarkTable5AbsoluteRuntimes(b *testing.B) {
	env := experiments.DefaultEnv()
	var rows []experiments.Table5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table5(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Name == "Remote Sensing LR" {
			b.ReportMetric(r.PGSec, "rs-lr-madlib-sec")
			b.ReportMetric(r.DAnASec, "rs-lr-dana-sec")
		}
	}
}

// --- Figures 8-10 --------------------------------------------------------

func benchClassSpeedups(b *testing.B, class string) {
	env := experiments.DefaultEnv()
	var warm, cold experiments.SpeedupRow
	for i := 0; i < b.N; i++ {
		var err error
		_, warm, err = experiments.ClassSpeedups(class, env, true)
		if err != nil {
			b.Fatal(err)
		}
		_, cold, err = experiments.ClassSpeedups(class, env, false)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(warm.DAnAvsPG, "warm-dana-vs-pg-x")
	b.ReportMetric(warm.DAnAvsGP, "warm-dana-vs-gp-x")
	b.ReportMetric(warm.GPvsPG, "warm-gp-vs-pg-x")
	b.ReportMetric(cold.DAnAvsPG, "cold-dana-vs-pg-x")
}

func BenchmarkFig8RealDatasets(b *testing.B)        { benchClassSpeedups(b, "real") }
func BenchmarkFig9SyntheticNominal(b *testing.B)    { benchClassSpeedups(b, "S/N") }
func BenchmarkFig10SyntheticExtensive(b *testing.B) { benchClassSpeedups(b, "S/E") }

// --- Figure 11 ------------------------------------------------------------

func BenchmarkFig11StriderBenefit(b *testing.B) {
	env := experiments.DefaultEnv()
	var gm experiments.StriderRow
	for i := 0; i < b.N; i++ {
		var err error
		_, gm, err = experiments.StriderBenefit(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(gm.WithoutStrider, "without-strider-x")
	b.ReportMetric(gm.WithStrider, "with-strider-x")
	b.ReportMetric(gm.WithStrider/gm.WithoutStrider, "strider-amplification-x")
}

// --- Figure 12 ------------------------------------------------------------

func BenchmarkFig12ThreadSweep(b *testing.B) {
	env := experiments.DefaultEnv()
	coefs := []int{1, 4, 16, 64, 256, 1024}
	for _, name := range experiments.Fig12Workloads {
		b.Run(name, func(b *testing.B) {
			var pts []experiments.ThreadPoint
			for i := 0; i < b.N; i++ {
				var err error
				pts, err = experiments.ThreadSweep(name, env, coefs)
				if err != nil {
					b.Fatal(err)
				}
			}
			last := pts[len(pts)-1]
			b.ReportMetric(last.RelRuntime, "runtime-at-1024-rel")
			b.ReportMetric(100*last.Utilization, "utilization-pct")
		})
	}
}

// --- Figure 13 ------------------------------------------------------------

func BenchmarkFig13SegmentSweep(b *testing.B) {
	env := experiments.DefaultEnv()
	var gm experiments.SegmentRow
	for i := 0; i < b.N; i++ {
		var err error
		_, gm, err = experiments.SegmentSweep(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(gm.PG, "pg-rel-to-8seg")
	b.ReportMetric(gm.Seg4, "4seg-rel-to-8seg")
	b.ReportMetric(gm.Seg16, "16seg-rel-to-8seg")
}

// --- Figure 14 ------------------------------------------------------------

func BenchmarkFig14BandwidthSweep(b *testing.B) {
	env := experiments.DefaultEnv()
	var rows []experiments.BandwidthRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.BandwidthSweep(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	var quarter, quad []float64
	for _, r := range rows {
		quarter = append(quarter, r.Speedups[0.25])
		quad = append(quad, r.Speedups[4])
	}
	b.ReportMetric(experiments.Geomean(quarter), "geomean-0.25x-bw")
	b.ReportMetric(experiments.Geomean(quad), "geomean-4x-bw")
}

// --- Figure 15 ------------------------------------------------------------

func BenchmarkFig15ExternalLibraries(b *testing.B) {
	env := experiments.DefaultEnv()
	var rows []experiments.ExtLibRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExternalLibraries(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	var danaVsDW []float64
	for _, r := range rows {
		danaVsDW = append(danaVsDW, r.DimmWittedSec/r.DAnASec)
	}
	b.ReportMetric(experiments.Geomean(danaVsDW), "dana-vs-dimmwitted-x")
}

// --- Figure 16 ------------------------------------------------------------

func BenchmarkFig16TablaComparison(b *testing.B) {
	env := experiments.DefaultEnv()
	var gm experiments.TablaRow
	for i := 0; i < b.N; i++ {
		var err error
		_, gm, err = experiments.TablaComparison(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(gm.Speedup, "dana-vs-tabla-x")
}

// --- Supplementary experiments and ablations --------------------------------

// BenchmarkPageSizeSweep reproduces the paper's 8/16/32 KB page-size
// sensitivity study (no significant impact).
func BenchmarkPageSizeSweep(b *testing.B) {
	env := experiments.DefaultEnv()
	var rows []experiments.PageSizeRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.PageSizeSweep(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	var worst float64
	for _, r := range rows {
		for _, v := range []float64{r.PG8K, r.PG16K} {
			if d := v - 1; d > worst || -d > worst {
				if d < 0 {
					d = -d
				}
				worst = d
			}
		}
	}
	b.ReportMetric(100*worst, "max-sensitivity-pct")
}

// BenchmarkBatchConvergence runs the functional batch-size/epochs study
// on one workload (supplementary tables).
func BenchmarkBatchConvergence(b *testing.B) {
	env := experiments.DefaultEnv()
	var rows []experiments.ConvergenceRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.BatchConvergence([]string{"Remote Sensing LR"}, env, 0.002, 0.5, 300)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Epochs[1]), "epochs-batch1")
	b.ReportMetric(float64(rows[0].Epochs[64]), "epochs-batch64")
}

// BenchmarkDesignAblations scores the DESIGN.md ablation study.
func BenchmarkDesignAblations(b *testing.B) {
	env := experiments.DefaultEnv()
	var gm experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		_, gm, err = experiments.Ablations(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(gm.Full, "full-x")
	b.ReportMetric(gm.NoInterleave, "no-interleave-x")
	b.ReportMetric(gm.TupleGranularity, "tuple-dma-x")
	b.ReportMetric(gm.NoStrider, "no-strider-x")
}

// BenchmarkStriderInnoDBWalk measures the MySQL/InnoDB chain walker.
func BenchmarkStriderInnoDBWalk(b *testing.B) {
	schema := storage.NumericSchema(54)
	rel := storage.NewInnoRelation("bench", schema, storage.PageSize32K)
	for i := 0; i < 256; i++ {
		if err := rel.Insert(make([]float64, 55)); err != nil {
			b.Fatal(err)
		}
	}
	page, err := rel.Page(0)
	if err != nil {
		b.Fatal(err)
	}
	prog, cfg, err := strider.GenerateInnoDB(strider.InnoDBLayout(storage.PageSize32K, schema))
	if err != nil {
		b.Fatal(err)
	}
	vm := strider.NewVM(prog, cfg)
	b.SetBytes(int64(storage.PageSize32K))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vm.Run([]byte(page)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Component throughput benchmarks ---------------------------------------

// BenchmarkStriderPageWalk measures the Strider VM unpacking full 32 KB
// pages (tuple extraction throughput in tuples/sec).
func BenchmarkStriderPageWalk(b *testing.B) {
	schema := storage.NumericSchema(54)
	rel := storage.NewRelation("bench", schema, storage.PageSize32K)
	rows := make([][]float64, 0, 256)
	for i := 0; i < 256; i++ {
		vals := make([]float64, 55)
		for j := range vals {
			vals[j] = float64(i + j)
		}
		rows = append(rows, vals)
	}
	if err := rel.InsertBatch(rows); err != nil {
		b.Fatal(err)
	}
	page, err := rel.Page(0)
	if err != nil {
		b.Fatal(err)
	}
	prog, cfg, err := strider.Generate(strider.PostgresLayout(storage.PageSize32K))
	if err != nil {
		b.Fatal(err)
	}
	vm := strider.NewVM(prog, cfg)
	tuplesPerPage := page.NumItems()
	b.SetBytes(int64(storage.PageSize32K))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vm.Run(page); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tuplesPerPage)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkAccessEngineDeformat measures page -> float32 record
// conversion through the full access engine.
func BenchmarkAccessEngineDeformat(b *testing.B) {
	schema := storage.NumericSchema(54)
	rel := storage.NewRelation("bench", schema, storage.PageSize32K)
	for i := 0; i < 129; i++ {
		vals := make([]float64, 55)
		if _, err := rel.Insert(vals); err != nil {
			b.Fatal(err)
		}
	}
	page, _ := rel.Page(0)
	ae, err := accessengine.New(strider.PostgresLayout(storage.PageSize32K), schema, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(storage.PageSize32K))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ae.ProcessPage(page); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineUpdateRule measures the execution-engine simulator's
// per-tuple update throughput (linear regression, 54 features, 8-way
// merge).
func BenchmarkEngineUpdateRule(b *testing.B) {
	w, _ := datagen.ByName("Remote Sensing LR")
	d, err := datagen.Generate(w, 0.001, storage.PageSize32K, 1)
	if err != nil {
		b.Fatal(err)
	}
	a, err := d.DSLAlgo(8)
	if err != nil {
		b.Fatal(err)
	}
	g, err := hdfg.Translate(a)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := compiler.Compile(g)
	if err != nil {
		b.Fatal(err)
	}
	m, err := engine.NewMachine(prog, engine.Config{
		Threads: 8, ACsPerThread: 2, AUsPerAC: 8, ClockHz: 150e6,
	})
	if err != nil {
		b.Fatal(err)
	}
	batch := make([][]float32, 8)
	for i := range batch {
		batch[i] = make([]float32, 55)
		for j := range batch[i] {
			batch[i][j] = float32(j)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.RunBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(8*b.N)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkInterpreterUpdateRule is the float64 golden model's
// throughput on the same update rule, for comparison.
func BenchmarkInterpreterUpdateRule(b *testing.B) {
	w, _ := datagen.ByName("Remote Sensing LR")
	d, err := datagen.Generate(w, 0.001, storage.PageSize32K, 1)
	if err != nil {
		b.Fatal(err)
	}
	a, err := d.DSLAlgo(8)
	if err != nil {
		b.Fatal(err)
	}
	g, err := hdfg.Translate(a)
	if err != nil {
		b.Fatal(err)
	}
	it, err := hdfg.NewInterp(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	batch := make([][]float64, 8)
	for i := range batch {
		batch[i] = make([]float64, 55)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := it.StepBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBufferPoolPin measures hit-path pin/unpin latency.
func BenchmarkBufferPoolPin(b *testing.B) {
	schema := storage.NumericSchema(9)
	rel := storage.NewRelation("bench", schema, storage.PageSize8K)
	if _, err := rel.Insert(make([]float64, 10)); err != nil {
		b.Fatal(err)
	}
	pool := bufpool.New(16, storage.PageSize8K, bufpool.DefaultDisk())
	if err := pool.AttachRelation(rel); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.Pin("bench", 0); err != nil {
			b.Fatal(err)
		}
		if err := pool.Unpin("bench", 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLSeqScan measures the volcano executor's scan rate.
func BenchmarkSQLSeqScan(b *testing.B) {
	db := sql.NewDB(storage.PageSize8K, 16<<20, bufpool.DefaultDisk())
	if _, err := db.Exec("CREATE TABLE t (a float4, b float4, c float4)"); err != nil {
		b.Fatal(err)
	}
	stmt := "INSERT INTO t VALUES "
	for i := 0; i < 1000; i++ {
		if i > 0 {
			stmt += ", "
		}
		stmt += fmt.Sprintf("(%d, %d, %d)", i, i+1, i+2)
	}
	if _, err := db.Exec(stmt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec("SELECT COUNT(*) FROM t WHERE a >= 500")
		if err != nil {
			b.Fatal(err)
		}
		if res.Rows[0][0] != 500 {
			b.Fatal("wrong count")
		}
	}
	b.ReportMetric(1000*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkMADlibEpoch measures the functional MADlib baseline.
func BenchmarkMADlibEpoch(b *testing.B) {
	w, _ := datagen.ByName("Remote Sensing LR")
	d, err := datagen.Generate(w, 0.005, storage.PageSize32K, 1)
	if err != nil {
		b.Fatal(err)
	}
	pool := bufpool.New(256, storage.PageSize32K, bufpool.DefaultDisk())
	if err := pool.AttachRelation(d.Rel); err != nil {
		b.Fatal(err)
	}
	tr, err := madlib.New(pool, d.Rel, d.MLAlgorithm())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Train(1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(d.Tuples)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkDAnAFunctionalEpoch measures the full functional pipeline:
// buffer pool -> striders -> execution engine, per epoch.
func BenchmarkDAnAFunctionalEpoch(b *testing.B) {
	eng, err := Open(Config{PageSize: 32 << 10, PoolBytes: 128 << 20})
	if err != nil {
		b.Fatal(err)
	}
	d, err := eng.LoadWorkload("Remote Sensing LR", 0.005, 1)
	if err != nil {
		b.Fatal(err)
	}
	a, err := d.DSLAlgo(64)
	if err != nil {
		b.Fatal(err)
	}
	a.SetEpochs(1)
	if err := eng.RegisterUDF(a, 64); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Train(a.Name, d.Rel.Name); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(d.Tuples)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
}

// --- Host-parallel executor benchmarks ---------------------------------------

// openTrainBench deploys a multi-page workload on an engine with the
// given executor configuration and registers its UDF.
func openTrainBench(b *testing.B, workload string, scale float64, mergeCoef, workers, epochs int, noCache bool) (*Engine, *Dataset, *Algo) {
	b.Helper()
	eng, err := Open(Config{
		PageSize: 32 << 10, PoolBytes: 128 << 20,
		Workers: workers, NoExtractCache: noCache,
	})
	if err != nil {
		b.Fatal(err)
	}
	d, err := eng.LoadWorkload(workload, scale, 1)
	if err != nil {
		b.Fatal(err)
	}
	a, err := d.DSLAlgo(mergeCoef)
	if err != nil {
		b.Fatal(err)
	}
	a.SetEpochs(epochs)
	if err := eng.RegisterUDF(a, mergeCoef); err != nil {
		b.Fatal(err)
	}
	return eng, d, a
}

// BenchmarkParallelExtract measures the wall-clock of one full
// extraction epoch (buffer pool -> Strider VMs -> deformat -> engine)
// with the record cache disabled, so every iteration re-walks every
// page: serial vs the pipelined worker pool at 4 and 8 workers.
// Modeled cycle counts are identical across all variants.
func BenchmarkParallelExtract(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng, d, a := openTrainBench(b, "Remote Sensing LR", 0.02, 64, workers, 1, true)
			b.SetBytes(int64(d.Rel.NumPages()) * int64(storage.PageSize32K))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Train(a.Name, d.Rel.Name); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(d.Tuples)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

// BenchmarkChannelSweep measures one full re-extracting epoch with the
// pages sharded across 1/2/4/8 memory channels (one Strider group and
// one record arena per channel). Modeled stats are charged by the
// coordinator in global page order, so cycle counts and trained models
// are bit-identical at every channel count; only wall-clock moves.
func BenchmarkChannelSweep(b *testing.B) {
	for _, channels := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("channels=%d", channels), func(b *testing.B) {
			eng, err := Open(Config{
				PageSize: 32 << 10, PoolBytes: 128 << 20,
				Workers: 4, Channels: channels, NoExtractCache: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			d, err := eng.LoadWorkload("Remote Sensing LR", 0.02, 1)
			if err != nil {
				b.Fatal(err)
			}
			a, err := d.DSLAlgo(64)
			if err != nil {
				b.Fatal(err)
			}
			a.SetEpochs(1)
			if err := eng.RegisterUDF(a, 64); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(d.Rel.NumPages()) * int64(storage.PageSize32K))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Train(a.Name, d.Rel.Name); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(d.Tuples)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

// BenchmarkTrainWallClock measures a multi-epoch training query end to
// end: the serial re-extracting executor versus the pipelined worker
// pool combined with the cross-epoch record cache (epochs >= 2 skip the
// buffer pool and Strider walk entirely).
func BenchmarkTrainWallClock(b *testing.B) {
	const epochs = 8
	workloads := []struct {
		name      string
		workload  string
		scale     float64
		mergeCoef int
	}{
		{"LR", "Remote Sensing LR", 0.02, 64},
		{"LRMF", "Netflix", 0.004, 1},
	}
	configs := []struct {
		name    string
		workers int
		noCache bool
	}{
		{"serial", 1, true},
		{"parallel4+cache", 4, false},
		{"parallel8+cache", 8, false},
	}
	for _, wl := range workloads {
		for _, cfg := range configs {
			b.Run(wl.name+"/"+cfg.name, func(b *testing.B) {
				eng, d, a := openTrainBench(b, wl.workload, wl.scale, wl.mergeCoef, cfg.workers, epochs, cfg.noCache)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Train(a.Name, d.Rel.Name); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(epochs*d.Tuples)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
			})
		}
	}
}

// BenchmarkCompilePipeline measures DSL -> hDFG -> program -> design.
func BenchmarkCompilePipeline(b *testing.B) {
	env := experiments.DefaultEnv()
	w, _ := datagen.ByName("S/N Logistic")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CompileWorkload(w, env, 1024); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTupleCodec measures heap tuple encode+decode.
func BenchmarkTupleCodec(b *testing.B) {
	schema := storage.NumericSchema(54)
	vals := make([]float64, 55)
	for i := range vals {
		vals[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := storage.EncodeTuple(schema, vals, 1, storage.TID{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := storage.DecodeTuple(schema, nil, raw); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(schema.DataWidth()))
}

// BenchmarkMicroMachineUpdateRule measures the micro-level simulator
// (lowered per-AC selective-SIMD streams) on the linear update rule.
func BenchmarkMicroMachineUpdateRule(b *testing.B) {
	w, _ := datagen.ByName("Remote Sensing LR")
	d, err := datagen.Generate(w, 0.001, storage.PageSize32K, 1)
	if err != nil {
		b.Fatal(err)
	}
	a, err := d.DSLAlgo(1)
	if err != nil {
		b.Fatal(err)
	}
	g, err := hdfg.Translate(a)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := compiler.Compile(g)
	if err != nil {
		b.Fatal(err)
	}
	mp, err := engine.Lower(prog, engine.Config{Threads: 1, ACsPerThread: 4, AUsPerAC: 8, ClockHz: 150e6})
	if err != nil {
		b.Fatal(err)
	}
	mic := engine.NewMicroMachine(mp)
	tuple := make([]float32, 55)
	for j := range tuple {
		tuple[j] = float32(j)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mic.RunTuple(tuple); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkListScheduler measures the §6.2 list scheduler on a compiled
// per-tuple program.
func BenchmarkListScheduler(b *testing.B) {
	env := experiments.DefaultEnv()
	w, _ := datagen.ByName("S/N Logistic")
	c, err := experiments.CompileWorkload(w, env, 1024)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var ilp float64
	for i := 0; i < b.N; i++ {
		s := compiler.ScheduleProgram(c.Program, c.Design.Engine)
		ilp = s.ILP()
	}
	b.ReportMetric(ilp, "ilp")
}

// BenchmarkStriderPostgresVsInnoDB contrasts the two layout walkers on
// identical data (see examples/mysqlpages).
func BenchmarkCatalogSerialization(b *testing.B) {
	env := experiments.DefaultEnv()
	w, _ := datagen.ByName("Remote Sensing LR")
	c, err := experiments.CompileWorkload(w, env, 64)
	if err != nil {
		b.Fatal(err)
	}
	sprog, scfg, err := strider.Generate(strider.PostgresLayout(storage.PageSize32K))
	if err != nil {
		b.Fatal(err)
	}
	acc := &catalog.Accelerator{
		UDFName: "bench", Program: c.Program, StriderProg: sprog, StriderCfg: scfg, Design: c.Design,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := catalog.ExportAccelerator(acc)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := catalog.ImportAccelerator(data); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data)))
	}
}

// --- Observability benchmarks ------------------------------------------------

// BenchmarkCalibration is a fixed arithmetic workload with no I/O, no
// allocation, and no dependence on repository code. The CI regression
// gate divides every benchmark's ns/op by this one's before comparing
// against the committed baseline, cancelling out raw machine speed so
// the gate tracks relative slowdowns rather than runner hardware.
func BenchmarkCalibration(b *testing.B) {
	acc := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < b.N; i++ {
		x := acc + uint64(i)
		for j := 0; j < 1024; j++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		acc += x
	}
	if acc == 42 {
		b.Fatal("unreachable: defeat dead-code elimination")
	}
}

// BenchmarkObsOverhead measures the cost of the observability layer on
// an end-to-end LR training query: identical runs with the counters
// enabled (default) and disabled (obs.Noop). TestObsOverheadBudget
// gates the delta at < 5%.
func BenchmarkObsOverhead(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		disable bool
	}{{"obs=on", false}, {"obs=off", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			eng, err := Open(Config{
				PageSize: 32 << 10, PoolBytes: 128 << 20,
				Workers: 1, NoExtractCache: true, DisableObs: cfg.disable,
			})
			if err != nil {
				b.Fatal(err)
			}
			d, err := eng.LoadWorkload("Remote Sensing LR", 0.02, 1)
			if err != nil {
				b.Fatal(err)
			}
			a, err := d.DSLAlgo(64)
			if err != nil {
				b.Fatal(err)
			}
			a.SetEpochs(2)
			if err := eng.RegisterUDF(a, 64); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Train(a.Name, d.Rel.Name); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(2*d.Tuples)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}
