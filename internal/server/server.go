// Package server is DAnA's multi-tenant session layer: it accepts
// concurrent train/score jobs from named tenants, queues them, admits
// them under per-tenant memory/VM quotas, and schedules a bounded pool
// of accelerator instances across tenants with fair-share,
// sequence-aware placement (ReProVide: reuse a loaded hDFG/Strider
// configuration across similar jobs instead of paying reconfiguration
// each time — see sched.go).
//
// Scheduling runs in virtual (modeled) time against the analytic cost
// model, so placement decisions are a pure function of the seed and
// arrival schedule; the functional runs then execute the plan with real
// host parallelism (one executor per modeled instance), each tenant's
// jobs replayed in virtual-start order. Isolation is structural: every
// tenant owns a private runtime.System — its own catalog, buffer pool,
// record cache, obs registry, and (optionally) fault injector — so one
// tenant's trap storm cannot perturb another tenant's modeled cycles.
package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dana/internal/backend"
	"dana/internal/bufpool"
	"dana/internal/catalog"
	"dana/internal/datagen"
	"dana/internal/dsl"
	"dana/internal/experiments"
	"dana/internal/fault"
	"dana/internal/obs"
	"dana/internal/runtime"
	"dana/internal/storage"
)

// TenantConfig declares one tenant.
type TenantConfig struct {
	Name   string
	Quota  Quota
	Weight float64 // fair-share weight (0 = 1)
	// Faults attaches a seeded chaos schedule to this tenant's private
	// System (nil = healthy). Isolation means a schedule here can
	// degrade only this tenant's jobs.
	Faults *fault.Config
}

// Config parameterizes a Server.
type Config struct {
	Tenants   []TenantConfig
	Instances int    // accelerator instances in the pool (0 = 2)
	Policy    Policy // scheduling policy (default sequence-aware)
	// Seed drives per-tenant dataset generation (every tenant sees the
	// same bytes for the same workload, like shards of one logical
	// catalog).
	Seed          int64
	PageSize      int   // 0 = 32 KB
	PoolBytes     int64 // per-tenant buffer pool frames (0 = 64 MB)
	Workers       int   // host extraction workers per tenant system (0 = 1)
	BatchSlackSec float64
	// Obs receives the server-level tenant.* counters (nil = a fresh
	// enabled registry). Tenant systems always get their own private
	// registries regardless.
	Obs *obs.Registry
}

// udfEntry pins the artifacts of one configuration key on one tenant:
// the registered UDF (renamed to be unique per key), its table, and the
// epoch budget fixed at first use.
type udfEntry struct {
	udfName string
	table   string
	epochs  int
	class   backend.Class
}

// tenant is one session principal: a private System plus the server's
// per-tenant instrument handles.
type tenant struct {
	name string
	sys  *runtime.System
	reg  *obs.Registry

	mu       sync.Mutex                  // serializes this tenant's functional runs
	deployed map[string]*datagen.Dataset // workload -> dataset (scale pinned)
	scales   map[string]float64          // workload -> deployed scale
	udfs     map[string]udfEntry         // config key -> artifacts
	models   map[string][]float32        // config key -> last trained model

	cJobs      *obs.Counter
	cTrains    *obs.Counter
	cScores    *obs.Counter
	cErrors    *obs.Counter
	cDegraded  *obs.Counter
	cReuses    *obs.Counter
	cReconfigs *obs.Counter
	cEngine    *obs.Counter
	cStrider   *obs.Counter
	cWaitUs    *obs.Counter
}

// Server is the session layer.
type Server struct {
	cfg Config
	env experiments.Env
	reg *obs.Registry

	mu       sync.Mutex // guards pending, planner state, estimator
	est      *costEstimator
	pending  []JobSpec
	keys     []string           // loaded configuration per instance
	vt       map[string]float64 // fair-share carry-over
	planCfg  PlanConfig
	arriveAt float64 // auto-assigned arrival clock for Submit

	drainMu sync.Mutex // serializes Drain batches

	tenants map[string]*tenant
	order   []string
}

// JobResult pairs a placement with its functional outcome.
type JobResult struct {
	Placement Placement
	Err       error
	Backend   string
	Degraded  bool
	Epochs    int
	Model     []float32
	// EngineCycles / StriderCycles are the job's modeled cycle deltas,
	// read from the tenant registry around the run (so they include
	// fault-path retries, and sum exactly to the tenant totals).
	EngineCycles  int64
	StriderCycles int64
	ScoredRows    int
}

// New builds the server: one private System per tenant (obs registry,
// buffer pool, optional fault injector), the shared cost estimator,
// and the per-tenant counter handles in the server registry (resolved
// here, at setup time, per the obsguard rule).
func New(cfg Config) (*Server, error) {
	if len(cfg.Tenants) == 0 {
		return nil, errors.New("server: no tenants configured")
	}
	if cfg.Instances <= 0 {
		cfg.Instances = 2
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = storage.PageSize32K
	}
	if cfg.PoolBytes <= 0 {
		cfg.PoolBytes = 64 << 20
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	env := experiments.DefaultEnv()
	env.PageSize = cfg.PageSize
	reg := cfg.Obs
	if reg == nil {
		reg = obs.New()
	}
	s := &Server{
		cfg:     cfg,
		env:     env,
		reg:     reg,
		est:     newCostEstimator(env),
		tenants: map[string]*tenant{},
		keys:    make([]string, cfg.Instances),
		vt:      map[string]float64{},
	}
	quotas := map[string]Quota{}
	weights := map[string]float64{}
	for _, tc := range cfg.Tenants {
		if tc.Name == "" {
			return nil, errors.New("server: tenant with empty name")
		}
		if _, dup := s.tenants[tc.Name]; dup {
			return nil, fmt.Errorf("server: duplicate tenant %q", tc.Name)
		}
		var inj *fault.Injector
		if tc.Faults != nil {
			fc := *tc.Faults
			inj = fault.New(fc)
		}
		treg := obs.New()
		sys := runtime.New(runtime.Options{
			PageSize:  cfg.PageSize,
			PoolBytes: cfg.PoolBytes,
			Disk:      bufpool.DefaultDisk(),
			FPGA:      env.FPGA,
			Cost:      env.Cost,
			Workers:   cfg.Workers,
			Obs:       treg,
			Faults:    inj,
		})
		t := &tenant{
			name: tc.Name, sys: sys, reg: treg,
			deployed: map[string]*datagen.Dataset{},
			scales:   map[string]float64{},
			udfs:     map[string]udfEntry{},
			models:   map[string][]float32{},
		}
		t.cJobs = reg.Counter(obs.TenantCounter(tc.Name, obs.TenantMetricJobs))
		t.cTrains = reg.Counter(obs.TenantCounter(tc.Name, obs.TenantMetricTrains))
		t.cScores = reg.Counter(obs.TenantCounter(tc.Name, obs.TenantMetricScores))
		t.cErrors = reg.Counter(obs.TenantCounter(tc.Name, obs.TenantMetricErrors))
		t.cDegraded = reg.Counter(obs.TenantCounter(tc.Name, obs.TenantMetricDegraded))
		t.cReuses = reg.Counter(obs.TenantCounter(tc.Name, obs.TenantMetricReuses))
		t.cReconfigs = reg.Counter(obs.TenantCounter(tc.Name, obs.TenantMetricReconfigs))
		t.cEngine = reg.Counter(obs.TenantCounter(tc.Name, obs.TenantMetricEngineCycles))
		t.cStrider = reg.Counter(obs.TenantCounter(tc.Name, obs.TenantMetricStriderCycles))
		t.cWaitUs = reg.Counter(obs.TenantCounter(tc.Name, obs.TenantMetricWaitMicros))
		s.tenants[tc.Name] = t
		s.order = append(s.order, tc.Name)
		quotas[tc.Name] = tc.Quota
		weights[tc.Name] = tc.Weight
	}
	sort.Strings(s.order)
	s.planCfg = PlanConfig{
		Instances:     cfg.Instances,
		Policy:        cfg.Policy,
		Cost:          env.Cost,
		BatchSlackSec: cfg.BatchSlackSec,
		Quotas:        quotas,
		Weights:       weights,
	}
	return s, nil
}

// Obs is the server registry carrying the tenant.* counters.
func (s *Server) Obs() *obs.Registry { return s.reg }

// TenantNames lists tenants in name order.
func (s *Server) TenantNames() []string { return append([]string(nil), s.order...) }

// TenantObs is the named tenant's private registry (nil if unknown).
func (s *Server) TenantObs(name string) *obs.Registry {
	if t, ok := s.tenants[name]; ok {
		return t.reg
	}
	return nil
}

// Policy reports the configured scheduling policy.
func (s *Server) Policy() Policy { return s.cfg.Policy }

// Submit validates a job (tenant known, workload priceable, quota
// satisfiable) and queues it for the next Drain. A zero ArriveSec gets
// a monotonically increasing virtual arrival, preserving submit order.
// Safe for concurrent use.
func (s *Server) Submit(spec JobSpec) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[spec.Tenant]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, spec.Tenant)
	}
	e, err := s.est.Estimate(spec)
	if err != nil {
		return err
	}
	q := s.planCfg.Quotas[spec.Tenant]
	if q.MemBytes > 0 && e.Bytes > q.MemBytes {
		return fmt.Errorf("%w: %s %q needs %d bytes, tenant %q allows %d",
			ErrQuotaImpossible, spec.Kind, spec.Workload, e.Bytes, t.name, q.MemBytes)
	}
	if spec.ArriveSec <= 0 {
		s.arriveAt += 1e-3
		spec.ArriveSec = s.arriveAt
	} else if spec.ArriveSec > s.arriveAt {
		s.arriveAt = spec.ArriveSec
	}
	s.pending = append(s.pending, spec)
	return nil
}

// Drain plans the pending batch (carrying loaded configurations and
// fair-share clocks over from earlier drains) and executes it, one
// executor goroutine per accelerator instance. Returns nil, nil when
// nothing is pending.
func (s *Server) Drain() (*Report, error) {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()

	s.mu.Lock()
	specs := s.pending
	s.pending = nil
	cfg := s.planCfg
	cfg.InitialKeys = s.keys
	cfg.InitialVT = s.vt
	plan, err := BuildPlan(specs, s.est, cfg)
	if err == nil && plan != nil {
		s.keys = plan.FinalKeys
		s.vt = plan.FinalVT
	}
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, nil
	}

	results := s.execute(plan)
	return buildReport(s, plan, results), nil
}

// Replan prices an alternative: the same specs planned from a cold pool
// under another policy, without executing anything (per-tenant
// functional outcomes are placement-independent, so comparing makespans
// isolates the scheduler's contribution).
func (s *Server) Replan(specs []JobSpec, pol Policy) (*Plan, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg := s.planCfg
	cfg.Policy = pol
	return BuildPlan(specs, s.est, cfg)
}

// Run submits specs (validating each) and drains them as one batch.
func (s *Server) Run(specs []JobSpec) (*Report, error) {
	for _, sp := range specs {
		if err := s.Submit(sp); err != nil {
			return nil, err
		}
	}
	return s.Drain()
}

// seqGate replays one tenant's placements in virtual-start order even
// when they land on different instance executors.
type seqGate struct {
	mu   sync.Mutex
	cond *sync.Cond
	next int
}

func newSeqGate() *seqGate {
	g := &seqGate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *seqGate) wait(seq int) {
	g.mu.Lock()
	for g.next != seq {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

func (g *seqGate) done() {
	g.mu.Lock()
	g.next++
	g.cond.Broadcast()
	g.mu.Unlock()
}

// execute runs the plan functionally: one goroutine per instance
// consuming its placements in virtual order, per-tenant order enforced
// by seq gates. Results are indexed by input spec order.
func (s *Server) execute(plan *Plan) []JobResult {
	perInst := make([][]*Placement, s.cfg.Instances)
	for i := range plan.Placements {
		pl := &plan.Placements[i]
		perInst[pl.Instance] = append(perInst[pl.Instance], pl)
	}
	gates := map[string]*seqGate{}
	for _, name := range s.order {
		gates[name] = newSeqGate()
	}
	results := make([]JobResult, len(plan.BySeq))
	var wg sync.WaitGroup
	for i := range perInst {
		wg.Add(1)
		go func(pls []*Placement) {
			defer wg.Done()
			for _, pl := range pls {
				g := gates[pl.Spec.Tenant]
				g.wait(pl.TenantSeq)
				results[pl.Seq] = s.runJob(pl)
				g.done()
			}
		}(perInst[i])
	}
	wg.Wait()
	return results
}

// runJob executes one placement on its tenant's System and charges the
// tenant counters from registry deltas, so the per-tenant cycle sums
// match the tenant registries exactly (IdentityError).
func (s *Server) runJob(pl *Placement) JobResult {
	t := s.tenants[pl.Spec.Tenant]
	t.mu.Lock()
	defer t.mu.Unlock()

	e0 := t.reg.Get(obs.EngineCycles)
	s0 := t.reg.Get(obs.StriderCyclesTotal)

	r := JobResult{Placement: *pl}
	switch pl.Spec.Kind {
	case KindScore:
		r.ScoredRows, r.Err = t.score(s, pl)
		r.Backend = "host"
	default:
		var res *runtime.TrainResult
		res, r.Err = t.train(s, pl)
		if res != nil {
			r.Backend = res.Backend
			r.Degraded = res.Degraded
			r.Epochs = res.Epochs
			r.Model = res.Model
			if res.Degraded && res.FailoverBackend != "" {
				r.Backend = res.FailoverBackend
			}
		}
	}

	r.EngineCycles = t.reg.Get(obs.EngineCycles) - e0
	r.StriderCycles = t.reg.Get(obs.StriderCyclesTotal) - s0

	waitUs := int64(pl.WaitSec() * 1e6)
	t.cJobs.Add(1)
	t.cWaitUs.Add(waitUs)
	t.cEngine.Add(r.EngineCycles)
	t.cStrider.Add(r.StriderCycles)
	if pl.Reused {
		t.cReuses.Add(1)
	} else {
		t.cReconfigs.Add(1)
	}
	if pl.Spec.Kind == KindScore {
		t.cScores.Add(1)
	} else {
		t.cTrains.Add(1)
	}
	if r.Err != nil {
		t.cErrors.Add(1)
	}
	if r.Degraded {
		t.cDegraded.Add(1)
	}
	return r
}

// ensureDeployed generates and attaches the workload's dataset on
// first use. The scale is pinned by the first job: the relation name is
// the workload's table name, so one tenant cannot hold the same
// workload at two scales.
func (t *tenant) ensureDeployed(s *Server, spec JobSpec) (*datagen.Dataset, error) {
	scale := spec.Scale
	if scale <= 0 {
		scale = 1
	}
	if ds, ok := t.deployed[spec.Workload]; ok {
		if t.scales[spec.Workload] != scale {
			return nil, fmt.Errorf("server: tenant %q already deployed %q at scale %g (job wants %g)",
				t.name, spec.Workload, t.scales[spec.Workload], scale)
		}
		return ds, nil
	}
	w, err := datagen.ByName(spec.Workload)
	if err != nil {
		return nil, err
	}
	ds, err := datagen.Generate(w, scale, s.cfg.PageSize, s.cfg.Seed)
	if err != nil {
		return nil, err
	}
	if err := t.sys.Deploy(ds); err != nil {
		return nil, err
	}
	t.deployed[spec.Workload] = ds
	t.scales[spec.Workload] = scale
	return ds, nil
}

// udfNameFor makes the registered UDF name unique per configuration
// key (algo names like "logisticR" repeat across workloads).
func udfNameFor(a *dsl.Algo, key string) string {
	return a.Name + "@" + key
}

// ensureUDF registers the configuration's UDF and builds its
// accelerator on first use (the functional analogue of loading the
// configuration). The epoch budget is pinned at first use per key.
func (t *tenant) ensureUDF(s *Server, spec JobSpec, key string) (udfEntry, error) {
	if ue, ok := t.udfs[key]; ok {
		return ue, nil
	}
	ds, err := t.ensureDeployed(s, spec)
	if err != nil {
		return udfEntry{}, err
	}
	merge := s.est.effectiveMerge(spec.Merge)
	a, err := ds.DSLAlgo(merge)
	if err != nil {
		return udfEntry{}, err
	}
	if spec.Epochs > 0 {
		a.SetEpochs(spec.Epochs)
	}
	a.Name = udfNameFor(a, key)
	if _, err := t.sys.Register(a, merge, ds.Tuples); err != nil {
		return udfEntry{}, err
	}
	udf, err := t.sys.Catalog().UDF(a.Name)
	if err != nil {
		return udfEntry{}, err
	}
	ue := udfEntry{
		udfName: a.Name,
		table:   ds.Rel.Name,
		epochs:  a.Epochs,
		class:   backend.Classify(udf.Graph),
	}
	t.udfs[key] = ue
	return ue, nil
}

func (t *tenant) train(s *Server, pl *Placement) (*runtime.TrainResult, error) {
	ue, err := t.ensureUDF(s, pl.Spec, pl.Key)
	if err != nil {
		return nil, err
	}
	res, err := t.sys.Train(ue.udfName, ue.table)
	if err != nil {
		return res, err
	}
	t.models[pl.Key] = res.Model
	return res, nil
}

// score runs a batch-scoring pass over the workload's table with the
// tenant's last trained model for this configuration (zeros before any
// train — deterministic, and honest about a cold model).
func (t *tenant) score(s *Server, pl *Placement) (int, error) {
	ue, err := t.ensureUDF(s, pl.Spec, pl.Key)
	if err != nil {
		return 0, err
	}
	udf, err := t.sys.Catalog().UDF(ue.udfName)
	if err != nil {
		return 0, err
	}
	rel, err := t.sys.Catalog().Table(ue.table)
	if err != nil {
		return 0, err
	}
	model := make([]float64, udf.Graph.ModelSize())
	if m := t.models[pl.Key]; m != nil {
		for i, v := range m {
			model[i] = float64(v)
		}
	}
	rows, err := scanRows64(rel)
	if err != nil {
		return 0, err
	}
	if _, err := backend.ScoreFloat64(ue.class, udf.Graph, model, rows); err != nil {
		return 0, err
	}
	return len(rows), nil
}

// scanRows64 materializes a relation's tuples narrowed through float32
// (the Strider datapath width), matching the runtime's row view.
func scanRows64(rel *storage.Relation) ([][]float64, error) {
	var rows [][]float64
	err := rel.Scan(func(_ storage.TID, vals []float64) error {
		r := make([]float64, len(vals))
		for i, v := range vals {
			r[i] = float64(float32(v))
		}
		rows = append(rows, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// IdentityError checks the cross-registry sum identity: for engine and
// strider cycles, the server's per-tenant counters must equal the sum
// of the corresponding totals in the per-tenant registries, exactly.
// A violation means charging raced or leaked across tenants.
func (s *Server) IdentityError() error {
	var wrong []string
	var chargedE, chargedS, globalE, globalS int64
	for _, name := range s.order {
		t := s.tenants[name]
		ce := s.reg.Get(obs.TenantCounter(name, obs.TenantMetricEngineCycles))
		cs := s.reg.Get(obs.TenantCounter(name, obs.TenantMetricStriderCycles))
		ge := t.reg.Get(obs.EngineCycles)
		gs := t.reg.Get(obs.StriderCyclesTotal)
		if ce != ge {
			wrong = append(wrong, fmt.Sprintf("%s: tenant engine_cycles %d != registry engine.cycles %d", name, ce, ge))
		}
		if cs != gs {
			wrong = append(wrong, fmt.Sprintf("%s: tenant strider_cycles %d != registry strider.cycles_total %d", name, cs, gs))
		}
		chargedE += ce
		chargedS += cs
		globalE += ge
		globalS += gs
	}
	if chargedE != globalE {
		wrong = append(wrong, fmt.Sprintf("sum engine_cycles %d != global %d", chargedE, globalE))
	}
	if chargedS != globalS {
		wrong = append(wrong, fmt.Sprintf("sum strider_cycles %d != global %d", chargedS, globalS))
	}
	if len(wrong) > 0 {
		return fmt.Errorf("server: per-tenant counter identity violated:\n  %s",
			joinLines(wrong))
	}
	return nil
}

func joinLines(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += "\n  "
		}
		out += x
	}
	return out
}

// tenantFor exposes a tenant's UDF table for tests.
func (s *Server) tenantFor(name string) *tenant { return s.tenants[name] }

// Catalog returns the named tenant's catalog (danasrv stdin mode).
func (s *Server) Catalog(name string) *catalog.Catalog {
	if t, ok := s.tenants[name]; ok {
		return t.sys.Catalog()
	}
	return nil
}
