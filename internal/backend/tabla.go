package backend

import (
	"fmt"

	"dana/internal/cost"
	"dana/internal/hwgen"
)

// Tabla is the TABLA-mode backend: the same engine simulator, but on
// the paper's TABLA baseline design point — single-threaded compute
// with CPU-side tuple handoff instead of Striders. Training semantics
// (merge batching, float32 datapath) match the accelerator; the cycle
// model and cost breakdown are the single-thread figures, and the
// backend is non-streaming because TABLA has no in-fabric page walkers.
type Tabla struct {
	Accel
}

// NewTabla builds an unconfigured TABLA backend.
func NewTabla(env Env) *Tabla { return &Tabla{Accel{env: env}} }

func (b *Tabla) Capabilities() Capabilities {
	return Capabilities{
		Name:                  NameTabla,
		Classes:               AllClasses(),
		Precision:             PrecisionFloat32,
		DeterministicCounters: true,
		ModelTolerance:        5e-3,
		Accelerated:           true,
	}
}

// tablaEngine derives the single-threaded design point for the compiled
// program, falling back to a one-thread copy of the DAnA config when
// the TABLA explorer cannot place the program.
func (b *Tabla) tablaEngine(job Job) (cfgOK bool, cfg hwgen.Design) {
	if job.Engine == nil {
		return false, hwgen.Design{}
	}
	td, err := hwgen.TablaDesign(job.Engine, b.env.FPGA, hwgen.Params{
		PageSize: job.PageSize, MergeCoef: 1, NumTuples: job.Tuples,
	})
	if err != nil {
		return false, hwgen.Design{}
	}
	return true, td
}

// EstimateCost prices the job as cost.TABLA: single-thread epoch cycles
// on the TABLA design point, plus the CPU-side feed.
func (b *Tabla) EstimateCost(job Job) (Cost, error) {
	if !admissible(b.Capabilities(), job) {
		return Cost{}, fmt.Errorf("%w: %s cannot run class=%s precision=%q",
			ErrUnsupported, NameTabla, job.Class, job.Precision)
	}
	w := job.Workload()
	if job.Engine != nil {
		single := job.Design.Engine
		single.Threads = 1
		if ok, td := b.tablaEngine(job); ok {
			single = td.Engine
		}
		w.SingleThreadEpochCycles = job.Engine.Estimate(single).EpochCycles(job.Tuples, max1(job.MergeCoef), 1)
	}
	bd := cost.TABLA(w, b.env.Cost, job.Warm)
	return Cost{Seconds: bd.TotalSec, Breakdown: bd}, nil
}

// Configure builds the machine on the TABLA design point's engine
// config instead of the provided DAnA one.
func (b *Tabla) Configure(p Program) error {
	if p.Graph == nil || p.Engine == nil {
		return fmt.Errorf("%w: %s needs a compiled engine program", ErrUnsupported, NameTabla)
	}
	cfg := p.EngineCfg
	cfg.Threads = 1
	td, err := hwgen.TablaDesign(p.Engine, b.env.FPGA, hwgen.Params{
		PageSize: p.PageSize, MergeCoef: 1, NumTuples: p.Tuples,
	})
	if err == nil {
		cfg = td.Engine
	}
	// TABLA has no Striders: the host fan-out cap is the single thread.
	p.Striders = 1
	return b.configure(p, cfg, b.Capabilities())
}
