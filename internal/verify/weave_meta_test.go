package verify

// Weave oracle tests plus its mutation meta-tests: the oracle must stay
// green on healthy pages at every precision, fire on planted bit-plane
// corruption, and go green again when the corruption is reverted —
// proving the oracle (not the harness) detected the fault.

import (
	"strings"
	"testing"

	"dana/internal/storage"
)

var weaveOracleBits = []int{1, 2, 4, 8, 16, 32}

func weaveScenario(t *testing.T, seed int64) *WeaveScenario {
	t.Helper()
	g := NewGen(seed)
	sc, err := g.WeaveScenario(storage.PageSize8K, 300)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestWeaveOracleGreen: healthy seeded scenarios pass at every read
// precision.
func TestWeaveOracleGreen(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		sc := weaveScenario(t, metaSeed+seed)
		for _, bits := range weaveOracleBits {
			if err := sc.CheckWeaveOracle(bits); err != nil {
				t.Errorf("seed %d bits %d: %v", seed, bits, err)
			}
		}
	}
}

// TestWeaveOracleDetectsCorruptMSBPlane flips one byte in the
// most-significant bit plane: every read precision touches level 0, so
// the oracle must fire at k=1 through k=32, and go green again on
// restore.
func TestWeaveOracleDetectsCorruptMSBPlane(t *testing.T) {
	sc := weaveScenario(t, metaSeed+20)
	p := sc.Pages[0]
	off := p.PlaneOffset(0, 0)
	p[off] ^= 0x04
	for _, bits := range weaveOracleBits {
		err := sc.CheckWeaveOracle(bits)
		if err == nil {
			t.Fatalf("bits %d: oracle W did not detect a flipped MSB-plane byte", bits)
		}
		if !strings.Contains(err.Error(), "scalar model") {
			t.Fatalf("bits %d: expected the scalar-model leg to fire, got: %v", bits, err)
		}
	}
	p[off] ^= 0x04
	for _, bits := range weaveOracleBits {
		if err := sc.CheckWeaveOracle(bits); err != nil {
			t.Fatalf("post-restore bits %d: %v", bits, err)
		}
	}
}

// TestWeaveOracleCorruptLowPlaneRespectsWindow flips a byte in bit
// plane 20: reads of 20 or fewer bits never touch it and must stay
// green, deeper reads must fire — the precision window is real, not
// cosmetic.
func TestWeaveOracleCorruptLowPlaneRespectsWindow(t *testing.T) {
	sc := weaveScenario(t, metaSeed+21)
	p := sc.Pages[0]
	off := p.PlaneOffset(20, 0)
	p[off] ^= 0x01
	for _, bits := range []int{1, 8, 16, 20} {
		if err := sc.CheckWeaveOracle(bits); err != nil {
			t.Fatalf("bits %d reads planes 0..%d only, must not see a level-20 flip: %v", bits, bits-1, err)
		}
	}
	for _, bits := range []int{21, 32} {
		if err := sc.CheckWeaveOracle(bits); err == nil {
			t.Fatalf("bits %d: oracle W did not detect a flipped level-20 plane byte", bits)
		}
	}
}

// TestWeaveOracleDetectsLabelCorruption flips a stored label byte: the
// label leg must fire at every precision (labels bypass quantization).
func TestWeaveOracleDetectsLabelCorruption(t *testing.T) {
	sc := weaveScenario(t, metaSeed+22)
	p := sc.Pages[0]
	off := storage.WeaveHeaderSize + p.NumCols()*storage.WeaveRangeSize
	p[off] ^= 0xFF
	err := sc.CheckWeaveOracle(32)
	if err == nil {
		t.Fatal("oracle W did not detect a corrupted label")
	}
	if !strings.Contains(err.Error(), "label") {
		t.Fatalf("expected the label leg to fire, got: %v", err)
	}
}

// TestWeaveOracleDetectsTruncatedPage cuts the last plane word off: the
// page must fail validation inside the decoder, which the oracle
// surfaces.
func TestWeaveOracleDetectsTruncatedPage(t *testing.T) {
	sc := weaveScenario(t, metaSeed+23)
	sc.Pages[0] = sc.Pages[0][:len(sc.Pages[0])-8]
	if err := sc.CheckWeaveOracle(32); err == nil {
		t.Fatal("oracle W did not detect a truncated page")
	}
}
