package dsl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads a UDF written in the paper's Python snippet syntax and
// returns the resulting Algo. Example (paper §4.3):
//
//	mo  = dana.model([10])
//	in  = dana.input([10])
//	out = dana.output()
//	lr  = dana.meta(0.3)
//	linearR = dana.algo(mo, in, out)
//	s    = sigma(mo * in, 1)
//	er   = s - out
//	grad = er * in
//	up   = lr * grad
//	mo_up = mo - up
//	merge_coef = dana.meta(8)
//	grad = linearR.merge(grad, merge_coef, "+")
//	linearR.setModel(mo_up)
//	linearR.setEpochs(10000)
func Parse(src string) (*Algo, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks: toks,
		algo: NewAlgo("udf"),
		env:  make(map[string]*Expr),
	}
	if err := p.program(); err != nil {
		return nil, err
	}
	if !p.algoNamed {
		return nil, fmt.Errorf("dsl: no dana.algo(...) declaration in UDF")
	}
	return p.algo, nil
}

// --- lexer ------------------------------------------------------------------

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString
	tPunct // one of . , ( ) [ ] = + - * / < >
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	rs := []rune(src)
	i := 0
	for i < len(rs) {
		r := rs[i]
		switch {
		case r == '\n':
			line++
			i++
		case unicode.IsSpace(r):
			i++
		case r == '#':
			for i < len(rs) && rs[i] != '\n' {
				i++
			}
		case r == '"' || r == '“' || r == '”': // straight or curly quotes
			j := i + 1
			for j < len(rs) && rs[j] != '"' && rs[j] != '“' && rs[j] != '”' {
				j++
			}
			if j == len(rs) {
				return nil, fmt.Errorf("dsl: line %d: unterminated string", line)
			}
			toks = append(toks, token{tString, string(rs[i+1 : j]), line})
			i = j + 1
		case unicode.IsLetter(r) || r == '_':
			j := i
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_') {
				j++
			}
			toks = append(toks, token{tIdent, string(rs[i:j]), line})
			i = j
		case unicode.IsDigit(r):
			j := i
			for j < len(rs) && (unicode.IsDigit(rs[j]) || rs[j] == '.' || rs[j] == 'e' || rs[j] == 'E' ||
				((rs[j] == '+' || rs[j] == '-') && j > i && (rs[j-1] == 'e' || rs[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, token{tNumber, string(rs[i:j]), line})
			i = j
		case strings.ContainsRune(".,()[]=+-*/<>", r):
			toks = append(toks, token{tPunct, string(r), line})
			i++
		default:
			return nil, fmt.Errorf("dsl: line %d: unexpected character %q", line, r)
		}
	}
	toks = append(toks, token{tEOF, "", line})
	return toks, nil
}

// --- parser -----------------------------------------------------------------

type parser struct {
	toks      []token
	pos       int
	algo      *Algo
	algoName  string
	algoNamed bool
	env       map[string]*Expr
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(text string) bool {
	if p.peek().kind == tPunct && p.peek().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, found %v", text, p.peek())
	}
	return nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("dsl: line %d: %s", p.peek().line, fmt.Sprintf(format, args...))
}

func (p *parser) program() error {
	for p.peek().kind != tEOF {
		if err := p.statement(); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) statement() error {
	if p.peek().kind != tIdent {
		return p.errf("expected statement, found %v", p.peek())
	}
	name := p.next().text
	switch {
	case p.accept("="):
		return p.assign(name)
	case p.accept("."):
		return p.methodCall(name)
	default:
		return p.errf("expected '=' or '.' after %q", name)
	}
}

// assign handles `name = rhs`.
func (p *parser) assign(name string) error {
	// dana.<decl>(...) ?
	if p.peek().kind == tIdent && p.peek().text == "dana" {
		p.next()
		if err := p.expect("."); err != nil {
			return err
		}
		if p.peek().kind != tIdent {
			return p.errf("expected declaration after 'dana.'")
		}
		decl := p.next().text
		return p.danaDecl(name, decl)
	}
	// algoName.merge(...) ?
	if p.peek().kind == tIdent && p.algoNamed && p.peek().text == p.algoName && p.toks[p.pos+1].kind == tPunct && p.toks[p.pos+1].text == "." {
		p.next()
		p.next() // consume '.'
		if p.peek().kind != tIdent || p.peek().text != "merge" {
			return p.errf("only .merge(...) may appear on the right of an assignment")
		}
		p.next()
		m, err := p.mergeCall()
		if err != nil {
			return err
		}
		p.bind(name, m)
		return nil
	}
	e, err := p.expr()
	if err != nil {
		return err
	}
	p.bind(name, e)
	return nil
}

func (p *parser) bind(name string, e *Expr) {
	if e.Name == "" {
		e.Name = name
	}
	p.env[name] = e
}

func (p *parser) danaDecl(name, decl string) error {
	if err := p.expect("("); err != nil {
		return err
	}
	switch decl {
	case "model", "input", "output":
		dims, err := p.dims()
		if err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		var e *Expr
		switch decl {
		case "model":
			e = p.algo.Model(dims...)
		case "input":
			e = p.algo.Input(dims...)
		default:
			e = p.algo.Output(dims...)
		}
		e.Name = name
		p.env[name] = e
		return nil
	case "meta":
		if p.peek().kind != tNumber {
			return p.errf("dana.meta needs a numeric literal")
		}
		v, err := strconv.ParseFloat(p.next().text, 64)
		if err != nil {
			return p.errf("bad number: %v", err)
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		e := p.algo.Meta(v)
		e.Name = name
		p.env[name] = e
		return nil
	case "algo":
		if p.algoNamed {
			return p.errf("dana.algo declared twice")
		}
		for {
			if p.peek().kind != tIdent {
				return p.errf("dana.algo arguments must be declared variables")
			}
			arg := p.next().text
			if _, ok := p.env[arg]; !ok {
				return p.errf("dana.algo argument %q is not declared", arg)
			}
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		p.algoName = name
		p.algoNamed = true
		p.algo.Name = name
		return nil
	default:
		return p.errf("unknown declaration dana.%s", decl)
	}
}

// dims parses `[5][2]`, `[5, 2]`, `[10]`, or nothing (scalar).
func (p *parser) dims() ([]int, error) {
	var dims []int
	for p.accept("[") {
		for {
			if p.peek().kind != tNumber {
				return nil, p.errf("expected dimension size")
			}
			n, err := strconv.Atoi(p.next().text)
			if err != nil {
				return nil, p.errf("bad dimension: %v", err)
			}
			dims = append(dims, n)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	return dims, nil
}

// methodCall handles `algoName.method(args)` statements.
func (p *parser) methodCall(recv string) error {
	if !p.algoNamed || recv != p.algoName {
		return p.errf("method call on %q, but the algo is %q", recv, p.algoName)
	}
	if p.peek().kind != tIdent {
		return p.errf("expected method name")
	}
	method := p.next().text
	switch method {
	case "setModel":
		if err := p.expect("("); err != nil {
			return err
		}
		e, err := p.expr()
		if err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		p.algo.SetModel(e)
		return nil
	case "setModelRow":
		if err := p.expect("("); err != nil {
			return err
		}
		idx, err := p.expr()
		if err != nil {
			return err
		}
		if err := p.expect(","); err != nil {
			return err
		}
		val, err := p.expr()
		if err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		p.algo.SetModelRow(idx, val)
		return nil
	case "setConvergence":
		if err := p.expect("("); err != nil {
			return err
		}
		e, err := p.expr()
		if err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		p.algo.SetConvergence(e)
		return nil
	case "setEpochs":
		if err := p.expect("("); err != nil {
			return err
		}
		if p.peek().kind != tNumber {
			return p.errf("setEpochs needs an integer literal")
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil {
			return p.errf("bad epoch count: %v", err)
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		p.algo.SetEpochs(n)
		return nil
	case "merge":
		m, err := p.mergeCall()
		if err != nil {
			return err
		}
		_ = m // merge used as a statement: the rewiring pass connects it
		return nil
	default:
		return p.errf("unknown method %q", method)
	}
}

// mergeCall parses `(x, coef, "+")` after `.merge`.
func (p *parser) mergeCall() (*Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	coef := 0
	switch p.peek().kind {
	case tNumber:
		coef, err = strconv.Atoi(p.next().text)
		if err != nil {
			return nil, p.errf("bad merge coefficient: %v", err)
		}
	case tIdent:
		ref, ok := p.env[p.peek().text]
		if !ok || ref.Kind != KMeta {
			return nil, p.errf("merge coefficient %q must be a dana.meta variable or literal", p.peek().text)
		}
		p.next()
		coef = int(ref.MetaValue)
	default:
		return nil, p.errf("expected merge coefficient")
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	if p.peek().kind != tString {
		return nil, p.errf("expected merge operation string")
	}
	op := p.next().text
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	m, err := p.algo.Merge(x, coef, op)
	if err != nil {
		return nil, p.errf("%v", err)
	}
	return m, nil
}

// --- expression grammar: cmp > addsub > muldiv > primary ---------------------

func (p *parser) expr() (*Expr, error) { return p.cmp() }

func (p *parser) cmp() (*Expr, error) {
	left, err := p.addsub()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch {
		case p.accept("<"):
			op = OpLt
		case p.accept(">"):
			op = OpGt
		default:
			return left, nil
		}
		right, err := p.addsub()
		if err != nil {
			return nil, err
		}
		left = binop(op, left, right)
	}
}

func (p *parser) addsub() (*Expr, error) {
	left, err := p.muldiv()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch {
		case p.accept("+"):
			op = OpAdd
		case p.accept("-"):
			op = OpSub
		default:
			return left, nil
		}
		right, err := p.muldiv()
		if err != nil {
			return nil, err
		}
		left = binop(op, left, right)
	}
}

func (p *parser) muldiv() (*Expr, error) {
	left, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch {
		case p.accept("*"):
			op = OpMul
		case p.accept("/"):
			op = OpDiv
		default:
			return left, nil
		}
		right, err := p.primary()
		if err != nil {
			return nil, err
		}
		left = binop(op, left, right)
	}
}

var exprFuncs = map[string]Op{
	"sigma": OpSigma, "pi": OpPi, "norm": OpNorm,
	"sigmoid": OpSigmoid, "gaussian": OpGaussian, "sqrt": OpSqrt,
	"gather": OpGather,
}

func (p *parser) primary() (*Expr, error) {
	t := p.peek()
	switch t.kind {
	case tNumber:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q: %v", t.text, err)
		}
		// Bare literals in expressions become implicit meta constants.
		return p.algo.Meta(v), nil
	case tIdent:
		if op, ok := exprFuncs[t.text]; ok && p.toks[p.pos+1].kind == tPunct && p.toks[p.pos+1].text == "(" {
			p.next()
			p.next() // '('
			arg, err := p.expr()
			if err != nil {
				return nil, err
			}
			var e *Expr
			switch {
			case op.IsGroup():
				if err := p.expect(","); err != nil {
					return nil, err
				}
				if p.peek().kind != tNumber {
					return nil, p.errf("group operation needs a constant axis")
				}
				axis, err := strconv.Atoi(p.next().text)
				if err != nil {
					return nil, p.errf("bad axis: %v", err)
				}
				e = groupop(op, arg, axis)
			case op == OpGather:
				if err := p.expect(","); err != nil {
					return nil, err
				}
				idx, err := p.expr()
				if err != nil {
					return nil, err
				}
				e = Gather(arg, idx)
			default:
				e = unop(op, arg)
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		p.next()
		e, ok := p.env[t.text]
		if !ok {
			return nil, p.errf("undefined variable %q", t.text)
		}
		return e, nil
	case tPunct:
		if t.text == "(" {
			p.next()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "-" { // unary minus: 0 - x
			p.next()
			x, err := p.primary()
			if err != nil {
				return nil, err
			}
			return Sub(p.algo.Meta(0), x), nil
		}
	}
	return nil, p.errf("unexpected token %v in expression", t)
}
