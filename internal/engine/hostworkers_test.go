package engine

import (
	hostrt "runtime"
	"testing"
)

// TestSetHostWorkersClampsToHostCores pins the PR-10 hotcall fix:
// RunBatch used to query runtime.GOMAXPROCS on every batch to cap the
// fan-out, which put a host-runtime call on the //dana:hotpath. The cap
// now lives in SetHostWorkers, so over-asking for workers is clamped at
// configuration time and the hot loop reads a plain field.
func TestSetHostWorkersClampsToHostCores(t *testing.T) {
	old := hostrt.GOMAXPROCS(2)
	defer hostrt.GOMAXPROCS(old)

	p := linearProgWithMerge()
	cfg := Config{Threads: 4, ACsPerThread: 2, AUsPerAC: 8, ClockHz: 150e6}
	m, err := NewMachine(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	m.SetHostWorkers(1 << 16)
	if m.hostWorkers != 2 {
		t.Fatalf("hostWorkers = %d after asking for 1<<16 with GOMAXPROCS=2, want 2", m.hostWorkers)
	}
	m.SetHostWorkers(0)
	if m.hostWorkers != 1 {
		t.Fatalf("hostWorkers = %d after asking for 0, want 1", m.hostWorkers)
	}
	m.SetHostWorkers(2)
	if m.hostWorkers != 2 {
		t.Fatalf("hostWorkers = %d after asking for 2, want 2", m.hostWorkers)
	}

	// The clamped machine must still run batches correctly.
	tuples := [][]float32{{1, 2, 3, 4, 5}, {5, 4, 3, 2, 1}}
	if err := m.RunBatch(tuples); err != nil {
		t.Fatal(err)
	}
}
