package backend_test

// Mutation meta-tests for the conformance harness: each test plants one
// deliberate defect behind a delegating wrapper and asserts that the
// one conformance check built to catch it — and no other — fires. A
// harness whose checks cannot fail proves nothing.

import (
	"errors"
	"testing"

	"dana/internal/backend"
	"dana/internal/engine"
)

// wrapper delegates to a real backend; each hook injects one defect.
type wrapper struct {
	inner backend.Backend

	capsHook  func(backend.Capabilities) backend.Capabilities
	costHook  func(backend.Cost, error) (backend.Cost, error)
	runHook   func(err error) error
	modelHook func([]float64) []float64
	scoreHook func([]float64)

	countersDelta int64
}

func (w *wrapper) Capabilities() backend.Capabilities {
	c := w.inner.Capabilities()
	if w.capsHook != nil {
		c = w.capsHook(c)
	}
	return c
}

func (w *wrapper) EstimateCost(job backend.Job) (backend.Cost, error) {
	c, err := w.inner.EstimateCost(job)
	if w.costHook != nil {
		return w.costHook(c, err)
	}
	return c, err
}

func (w *wrapper) Configure(p backend.Program) error { return w.inner.Configure(p) }

func (w *wrapper) RunEpoch(st *backend.Stream) error {
	err := w.inner.RunEpoch(st)
	if w.runHook != nil {
		return w.runHook(err)
	}
	return err
}

func (w *wrapper) Score(model []float64, rows [][]float64) ([]float64, error) {
	preds, err := w.inner.Score(model, rows)
	if err == nil && w.scoreHook != nil {
		w.scoreHook(preds)
	}
	return preds, err
}

func (w *wrapper) Model() []float64 {
	m := w.inner.Model()
	if w.modelHook != nil {
		m = w.modelHook(m)
	}
	return m
}

func (w *wrapper) SetModel(m []float64) error { return w.inner.SetModel(m) }

func (w *wrapper) Counters() engine.Stats {
	var st engine.Stats
	if cb, ok := w.inner.(backend.CounterBackend); ok {
		st = cb.Counters()
	}
	st.Cycles += w.countersDelta
	return st
}

// metaScenario is the fixed scenario the mutants run on: seed 3 is a
// small linear job every backend supports.
func metaScenario() backend.Scenario { return backend.GenScenario(3) }

// runMutant asserts the mutated registration fails conformance with the
// expected check — and only that check.
func runMutant(t *testing.T, reg backend.Registration, wantCheck string) {
	t.Helper()
	vs := backend.Check(reg, backend.ConformanceEnv(), metaScenario())
	if len(vs) == 0 {
		t.Fatalf("mutant passed conformance: check %q cannot fail", wantCheck)
	}
	for _, v := range vs {
		if v.Check != wantCheck {
			t.Errorf("mutant tripped %s, want only %s", v, wantCheck)
		}
	}
}

// cpuMutant wraps the golden CPU backend with one hook set.
func cpuMutant(mutate func(*wrapper)) backend.Registration {
	return backend.Registration{
		Name: backend.NameCPU,
		New: func(env backend.Env) backend.Backend {
			w := &wrapper{inner: backend.NewCPU(env)}
			mutate(w)
			return w
		},
	}
}

// TestMetaWrapperTransparent proves the delegating wrapper itself is
// conformant, so mutant failures are attributable to the planted defect.
func TestMetaWrapperTransparent(t *testing.T) {
	reg := cpuMutant(func(w *wrapper) {})
	if vs := backend.Check(reg, backend.ConformanceEnv(), metaScenario()); len(vs) > 0 {
		t.Fatalf("transparent wrapper fails conformance: %v", vs)
	}
}

func TestMetaCapabilitiesCheckFires(t *testing.T) {
	runMutant(t, cpuMutant(func(w *wrapper) {
		w.capsHook = func(c backend.Capabilities) backend.Capabilities {
			c.Name = "impostor" // lies about its identity
			return c
		}
	}), backend.CheckCapabilities)
}

func TestMetaUnsupportedCheckFires(t *testing.T) {
	runMutant(t, cpuMutant(func(w *wrapper) {
		w.costHook = func(c backend.Cost, err error) (backend.Cost, error) {
			if errors.Is(err, backend.ErrUnsupported) {
				return c, errors.New("backend busy") // untyped rejection
			}
			return c, err
		}
	}), backend.CheckUnsupported)
}

func TestMetaNotConfiguredCheckFires(t *testing.T) {
	runMutant(t, cpuMutant(func(w *wrapper) {
		w.runHook = func(err error) error {
			if errors.Is(err, backend.ErrNotConfigured) {
				return nil // silently accepts pre-Configure use
			}
			return err
		}
	}), backend.CheckNotConfigured)
}

func TestMetaTrainCheckFires(t *testing.T) {
	runMutant(t, cpuMutant(func(w *wrapper) {
		w.modelHook = func(m []float64) []float64 {
			mm := append([]float64(nil), m...)
			mm[0] += 1 // trains to the wrong model
			return mm
		}
	}), backend.CheckTrain)
}

func TestMetaScoreCheckFires(t *testing.T) {
	runMutant(t, cpuMutant(func(w *wrapper) {
		w.scoreHook = func(preds []float64) {
			preds[0] += 1 // mispredicts
		}
	}), backend.CheckScore)
}

// TestMetaDeterminismCheckFires wraps the accelerator (the backend that
// promises DeterministicCounters) so each instance reports counters
// offset by its creation order: bit-identity across delivery forms must
// catch the divergence.
func TestMetaDeterminismCheckFires(t *testing.T) {
	instances := int64(0)
	reg := backend.Registration{
		Name: backend.NameAccelerator,
		New: func(env backend.Env) backend.Backend {
			instances++
			return &wrapper{inner: backend.NewAccel(env), countersDelta: instances}
		},
	}
	runMutant(t, reg, backend.CheckDeterminism)
}
