package storage

import (
	"errors"
	"testing"
)

// Regression tests for implicit-panic hardening: every Page accessor
// reachable from a public entry point must return an error (or a zero
// value) on truncated or corrupt pages, never index out of range.

func TestTruncatedPageAccessorsDoNotPanic(t *testing.T) {
	for _, n := range []int{0, 1, 7, 9, 11, 13, 15, 17, 19, 23} {
		p := Page(make([]byte, n))
		if got := p.Size(); got != 0 {
			t.Errorf("len %d: Size=%d, want 0", n, got)
		}
		if got := p.Version(); got != 0 {
			t.Errorf("len %d: Version=%d, want 0", n, got)
		}
		if got := p.Lower(); got != 0 {
			t.Errorf("len %d: Lower=%d, want 0", n, got)
		}
		if got := p.Upper(); got != 0 {
			t.Errorf("len %d: Upper=%d, want 0", n, got)
		}
		if got := p.Special(); got != 0 {
			t.Errorf("len %d: Special=%d, want 0", n, got)
		}
		if got := p.LSN(); got != 0 {
			t.Errorf("len %d: LSN=%d, want 0", n, got)
		}
		if got := p.Checksum(); got != 0 {
			t.Errorf("len %d: Checksum=%d, want 0", n, got)
		}
		if got := p.NumItems(); got != 0 {
			t.Errorf("len %d: NumItems=%d, want 0", n, got)
		}
		if got := p.FreeSpace(); got != 0 {
			t.Errorf("len %d: FreeSpace=%d, want 0", n, got)
		}
		// Writers must be no-ops, not panics.
		p.SetLSN(42)
		p.SetChecksum(42)
		p.StampChecksum()
		p.Init(0)
		if _, err := p.ItemID(0); !errors.Is(err, ErrBadItem) {
			t.Errorf("len %d: ItemID err=%v, want ErrBadItem", n, err)
		}
		if _, err := p.Item(0); err == nil {
			t.Errorf("len %d: Item succeeded on truncated page", n)
		}
		if _, err := p.AddItem([]byte{1, 2, 3}); err == nil {
			t.Errorf("len %d: AddItem succeeded on truncated page", n)
		}
		if err := p.Validate(); err == nil {
			t.Errorf("len %d: Validate passed a truncated page", n)
		}
		_ = p.ComputeChecksum()
		_ = p.ChecksumOK()
	}
}

func TestNilPageDoesNotPanic(t *testing.T) {
	var p Page
	_ = p.Size()
	_ = p.NumItems()
	_ = p.ComputeChecksum()
	p.StampChecksum()
	if _, err := p.AddItem([]byte{1}); err == nil {
		t.Fatal("AddItem on nil page succeeded")
	}
	if err := p.Validate(); err == nil {
		t.Fatal("Validate passed a nil page")
	}
}

func TestAddItemRejectsLyingHeader(t *testing.T) {
	// A header claiming upper beyond the page must fail with ErrCorrupt
	// instead of driving the tuple copy out of the buffer.
	p := NewPage(PageSize8K, 0)
	setU16 := func(off int, v uint16) {
		p[off] = byte(v)
		p[off+1] = byte(v >> 8)
	}
	setU16(offUpper, uint16(PageSize8K+512)) // > len(p) ... wraps within uint16 but still > 8192
	if _, err := p.AddItem(make([]byte, 64)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("upper beyond page: err=%v, want ErrCorrupt", err)
	}

	p = NewPage(PageSize8K, 0)
	setU16(offLower, 4) // < PageHeaderSize
	if _, err := p.AddItem(make([]byte, 64)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("lower under header: err=%v, want ErrCorrupt", err)
	}

	p = NewPage(PageSize8K, 0)
	setU16(offLower, 4000)
	setU16(offUpper, 2000) // lower > upper
	if _, err := p.AddItem(make([]byte, 64)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("crossed bounds: err=%v, want ErrCorrupt", err)
	}
}

func TestInitClampsOversizedSpecial(t *testing.T) {
	p := Page(make([]byte, 256))
	p.Init(4096) // special space larger than the page
	if sp := p.Special(); sp < PageHeaderSize || sp > len(p) {
		t.Fatalf("Special=%d outside [%d,%d]", sp, PageHeaderSize, len(p))
	}
	if p.Lower() != PageHeaderSize {
		t.Fatalf("Lower=%d, want %d", p.Lower(), PageHeaderSize)
	}
}

func TestStampAndVerifyChecksum(t *testing.T) {
	p := NewPage(PageSize8K, 0)
	if _, err := p.AddItem(make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if p.Checksum() != 0 {
		t.Fatal("fresh page should be unstamped")
	}
	if !p.ChecksumOK() {
		t.Fatal("unstamped page must verify trivially")
	}
	p.StampChecksum()
	if p.Checksum() == 0 {
		t.Fatal("stamp left checksum zero")
	}
	if !p.ChecksumOK() {
		t.Fatal("freshly stamped page fails verification")
	}
	p[len(p)-3] ^= 0x40
	if p.ChecksumOK() {
		t.Fatal("single bit flip not caught")
	}
	p[len(p)-3] ^= 0x40
	if !p.ChecksumOK() {
		t.Fatal("restored page fails verification")
	}
}

func TestRelationPageStampsLazily(t *testing.T) {
	schema := NewSchema(Column{Name: "x", Type: TFloat32})
	rel := NewRelation("lazy", schema, PageSize8K)
	if _, err := rel.Insert([]float64{1}); err != nil {
		t.Fatal(err)
	}
	pg, err := rel.Page(0)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Checksum() == 0 {
		t.Fatal("Relation.Page did not stamp the checksum")
	}
	if !pg.ChecksumOK() {
		t.Fatal("stamped page fails verification")
	}
	stamp := pg.Checksum()
	// A mutation re-dirties the page: the next read restamps.
	if _, err := rel.Insert([]float64{2}); err != nil {
		t.Fatal(err)
	}
	pg2, err := rel.Page(0)
	if err != nil {
		t.Fatal(err)
	}
	if pg2.Checksum() == stamp {
		t.Fatal("checksum unchanged after mutation")
	}
	if !pg2.ChecksumOK() {
		t.Fatal("restamped page fails verification")
	}
	// Deletes dirty the page too.
	if err := rel.Delete(TID{Page: 0, Item: 0}); err != nil {
		t.Fatal(err)
	}
	pg3, err := rel.Page(0)
	if err != nil {
		t.Fatal(err)
	}
	if !pg3.ChecksumOK() {
		t.Fatal("page not restamped after delete")
	}
}
