package backend

import (
	"fmt"
	"math"

	"dana/internal/hdfg"
)

// Inference over an explicit model, shared by the backends. Each class
// has one scoring rule — dot product (linear), sigmoid probability
// (logistic), raw margin (SVM), factor-row dot product (LRMF) — and
// each backend evaluates it at its own precision: score64 in float64
// (CPU-class backends), score32 with every intermediate narrowed to
// float32 (the simulated FPGA datapaths). The cycle model for scoring
// is future work (ROADMAP inference serving); these are the functional
// semantics the conformance suite pins.

// ScoreFloat64 evaluates the class's scoring rule at full float64
// precision over an explicit model — the entry point for out-of-package
// reference-precision backends (greenplum's Sharded).
func ScoreFloat64(class Class, g *hdfg.Graph, model []float64, rows [][]float64) ([]float64, error) {
	return score64(class, g, model, rows)
}

func scoreCheck(class Class, g *hdfg.Graph, model []float64, rows [][]float64) (nf int, err error) {
	if g == nil || g.Model == nil {
		return 0, ErrNotConfigured
	}
	if len(model) != g.ModelSize() {
		return 0, fmt.Errorf("backend: score model size %d, want %d", len(model), g.ModelSize())
	}
	if class == ClassLRMF {
		nf = 2
	} else {
		nf = g.Model.Shape.Size()
	}
	for i, row := range rows {
		if len(row) < nf {
			return 0, fmt.Errorf("backend: score row %d has %d values, need >= %d", i, len(row), nf)
		}
	}
	return nf, nil
}

func score64(class Class, g *hdfg.Graph, model []float64, rows [][]float64) ([]float64, error) {
	nf, err := scoreCheck(class, g, model, rows)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(rows))
	for i, row := range rows {
		if class == ClassLRMF {
			rank := g.Model.Shape[1]
			u, v := int(math.Round(row[0])), int(math.Round(row[1]))
			rowsTotal := g.Model.Shape[0]
			if u < 0 || u >= rowsTotal || v < 0 || v >= rowsTotal {
				return nil, fmt.Errorf("backend: score row %d: factor index (%d,%d) out of [0,%d)", i, u, v, rowsTotal)
			}
			s := 0.0
			for k := 0; k < rank; k++ {
				s += model[u*rank+k] * model[v*rank+k]
			}
			out[i] = s
			continue
		}
		s := 0.0
		for j := 0; j < nf; j++ {
			s += model[j] * row[j]
		}
		if class == ClassLogistic {
			s = 1 / (1 + math.Exp(-s))
		}
		out[i] = s
	}
	return out, nil
}

func score32(class Class, g *hdfg.Graph, model []float64, rows [][]float64) ([]float64, error) {
	nf, err := scoreCheck(class, g, model, rows)
	if err != nil {
		return nil, err
	}
	m32 := narrow32(model)
	out := make([]float64, len(rows))
	for i, row := range rows {
		if class == ClassLRMF {
			rank := g.Model.Shape[1]
			u, v := int(math.Round(row[0])), int(math.Round(row[1]))
			rowsTotal := g.Model.Shape[0]
			if u < 0 || u >= rowsTotal || v < 0 || v >= rowsTotal {
				return nil, fmt.Errorf("backend: score row %d: factor index (%d,%d) out of [0,%d)", i, u, v, rowsTotal)
			}
			var s float32
			for k := 0; k < rank; k++ {
				s += m32[u*rank+k] * m32[v*rank+k]
			}
			out[i] = float64(s)
			continue
		}
		var s float32
		for j := 0; j < nf; j++ {
			s += m32[j] * float32(row[j])
		}
		if class == ClassLogistic {
			s = float32(1 / (1 + math.Exp(-float64(s))))
		}
		out[i] = float64(s)
	}
	return out, nil
}
