package storage

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSchemaOffsetsAlignment(t *testing.T) {
	s := NewSchema(
		Column{"a", TFloat32}, // 0
		Column{"b", TFloat64}, // aligned to 8
		Column{"c", TInt32},   // 16
		Column{"d", TInt64},   // aligned to 24
	)
	wantOff := []int{0, 8, 16, 24}
	for i, w := range wantOff {
		if got := s.ColOffset(i); got != w {
			t.Errorf("offset[%d] = %d, want %d", i, got, w)
		}
	}
	if s.DataWidth() != 32 {
		t.Errorf("DataWidth = %d, want 32", s.DataWidth())
	}
}

func TestNumericSchema(t *testing.T) {
	s := NumericSchema(54)
	if s.NumCols() != 55 {
		t.Fatalf("NumCols = %d, want 55", s.NumCols())
	}
	if s.DataWidth() != 55*4 {
		t.Errorf("DataWidth = %d, want %d", s.DataWidth(), 55*4)
	}
	if s.ColIndex("label") != 54 {
		t.Errorf("label index = %d", s.ColIndex("label"))
	}
	if s.ColIndex("f10") != 10 {
		t.Errorf("f10 index = %d", s.ColIndex("f10"))
	}
	if s.ColIndex("nope") != -1 {
		t.Errorf("missing column index = %d, want -1", s.ColIndex("nope"))
	}
}

func TestParseColType(t *testing.T) {
	cases := map[string]ColType{
		"float4": TFloat32, "REAL": TFloat32,
		"float8": TFloat64, "double precision": TFloat64,
		"int": TInt32, "INTEGER": TInt32, "bigint": TInt64,
	}
	for in, want := range cases {
		got, err := ParseColType(in)
		if err != nil || got != want {
			t.Errorf("ParseColType(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseColType("varchar"); err == nil {
		t.Error("ParseColType(varchar) should fail (fixed-width types only)")
	}
}

func TestTupleEncodeDecodeRoundTrip(t *testing.T) {
	s := NewSchema(
		Column{"x", TFloat32},
		Column{"y", TFloat64},
		Column{"n", TInt32},
	)
	vals := []float64{1.5, -2.25, 42}
	raw, err := EncodeTuple(s, vals, 99, TID{Page: 3, Item: 7})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := DecodeTupleMeta(raw)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Xmin != 99 {
		t.Errorf("Xmin = %d", meta.Xmin)
	}
	if meta.Ctid != (TID{Page: 3, Item: 7}) {
		t.Errorf("Ctid = %v", meta.Ctid)
	}
	if meta.NAttrs() != 3 {
		t.Errorf("NAttrs = %d", meta.NAttrs())
	}
	if meta.Hoff != TupleHeaderSize {
		t.Errorf("Hoff = %d", meta.Hoff)
	}
	got, err := DecodeTuple(s, nil, raw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("col %d = %v, want %v", i, got[i], vals[i])
		}
	}
}

func TestTupleRoundTripProperty(t *testing.T) {
	s := NumericSchema(16)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, 17)
		for i := range vals {
			// float32-representable values survive the round trip exactly
			vals[i] = float64(float32(rng.NormFloat64() * 100))
		}
		raw, err := EncodeTuple(s, vals, 1, TID{})
		if err != nil {
			return false
		}
		got, err := DecodeTuple(s, nil, raw)
		if err != nil {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] && !(math.IsNaN(got[i]) && math.IsNaN(vals[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeTupleMetaTooShort(t *testing.T) {
	if _, err := DecodeTupleMeta(make([]byte, 10)); err == nil {
		t.Error("short tuple should fail")
	}
}

func TestEncodeValuesErrors(t *testing.T) {
	s := NumericSchema(2)
	if err := s.EncodeValues(make([]byte, s.DataWidth()), []float64{1}); err == nil {
		t.Error("wrong arity should fail")
	}
	if err := s.EncodeValues(make([]byte, 2), []float64{1, 2, 3}); err == nil {
		t.Error("short buffer should fail")
	}
}
