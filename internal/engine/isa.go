// Package engine simulates DAnA's multi-threaded execution engine
// (paper §5.2): threads of Analytic Clusters (ACs), each a selective-SIMD
// collection of 8 Analytic Units (AUs) with neighbor links and a shared
// intra-AC bus, joined across threads by a computationally-enabled tree
// bus that realizes the merge function.
//
// The simulator is functional (it computes real float32 results) and
// cycle-accounted: every instruction charges the cycles the statically
// scheduled hardware would take at the configured clock. The paper's
// Appendix B ISA is not public, so the instruction encoding here is the
// DESIGN.md concretization: thread-scope macro-instructions over a
// canonical element layout, each expandable to per-AC selective-SIMD
// micro-ops (see Expand).
package engine

import "fmt"

// AluOp enumerates AU ALU operations.
type AluOp uint8

const (
	ANop AluOp = iota
	AMov
	AAdd
	ASub
	AMul
	ADiv
	ALt
	AGt
	ASigmoid
	AGaussian
	ASqrt
	ASquare // x*x, used by norm lowering
)

var aluNames = [...]string{"nop", "mov", "add", "sub", "mul", "div", "lt", "gt", "sigmoid", "gaussian", "sqrt", "square"}

func (o AluOp) String() string {
	if int(o) < len(aluNames) {
		return aluNames[o]
	}
	return fmt.Sprintf("alu(%d)", uint8(o))
}

// Latency returns the AU pipeline latency of the operation in cycles.
// Values follow typical FPGA DSP-slice implementations at 150 MHz.
func (o AluOp) Latency() int {
	switch o {
	case ANop, AMov, AAdd, ASub, ALt, AGt:
		return 1
	case AMul, ASquare:
		return 2
	case ADiv:
		return 8
	case ASqrt:
		return 4
	case ASigmoid, AGaussian:
		return 6
	default:
		return 1
	}
}

// IsUnary reports whether the op takes one source.
func (o AluOp) IsUnary() bool {
	switch o {
	case AMov, ASigmoid, AGaussian, ASqrt, ASquare:
		return true
	}
	return false
}

// Slot is a region of the thread-local scratchpad in the canonical
// layout: word w resides in AU (w mod 8) of AC ((w/8) mod ACsPerThread),
// local address w / (8*ACsPerThread). Contiguous slots therefore stripe
// perfectly across lanes.
type Slot struct {
	Base int
	Len  int
}

func (s Slot) String() string { return fmt.Sprintf("[%d+%d]", s.Base, s.Len) }

// Kind discriminates macro-instruction classes.
type Kind uint8

const (
	KEW      Kind = iota // elementwise: Dst[i] = ALU(A[i mod A.Len], B[i mod B.Len])
	KReduce              // grouped reduction with strides (sigma/pi and intra-norm)
	KGather              // Dst = model[rowIdx*RowLen : ...], rowIdx from scalar slot A
	KScatter             // model[rowIdx*RowLen : ...] = A, rowIdx from scalar slot B
)

// Instr is one thread-scope macro instruction.
type Instr struct {
	Kind Kind
	Op   AluOp // EW/Reduce combining op
	Dst  Slot
	A    Slot // src1 (EW), reduce input, gather index (scalar), scatter value
	B    Slot // src2 (EW), scatter index (scalar)

	// Reduce geometry: input element (g, e) of group g is at
	// A.Base + g*GStride + e*EStride, for Dst.Len groups of GroupSize.
	GroupSize int
	GStride   int
	EStride   int

	// Gather/scatter row length (model columns).
	RowLen int
}

func (in Instr) String() string {
	switch in.Kind {
	case KEW:
		return fmt.Sprintf("ew.%s %v <- %v, %v", in.Op, in.Dst, in.A, in.B)
	case KReduce:
		return fmt.Sprintf("red.%s %v <- %v (g=%d gs=%d es=%d)", in.Op, in.Dst, in.A, in.GroupSize, in.GStride, in.EStride)
	case KGather:
		return fmt.Sprintf("gather %v <- model[%v * %d]", in.Dst, in.A, in.RowLen)
	case KScatter:
		return fmt.Sprintf("scatter model[%v * %d] <- %v", in.B, in.RowLen, in.A)
	default:
		return fmt.Sprintf("instr(kind=%d)", in.Kind)
	}
}

// Program is a compiled accelerator binary: the per-tuple update rule,
// the merge combination, the post-merge model update, and the
// convergence check, all over one scratchpad slot space.
type Program struct {
	Slots     int // scratchpad words per thread
	ModelSlot Slot
	InputSlot Slot // tuple values (inputs then outputs, declaration order)
	ConstSlot Slot
	Consts    []float32 // initial contents of ConstSlot

	PerTuple  []Instr // executed for every training tuple
	MergeSrc  Slot    // per-thread value entering the tree bus (Len 0 = no merge)
	MergeOp   AluOp   // tree-bus combining ALU op
	MergeDst  Slot    // where the merged value lands (thread 0)
	PostMerge []Instr // executed once per batch on thread 0

	UpdatedSlot Slot    // new dense model after the update (Len 0 if none)
	RowUpdates  []Instr // KScatter row updates (per-tuple stage)
	Convergence []Instr // executed once per epoch on thread 0
	ConvSlot    Slot    // scalar: >0.5 means converged (Len 0 if none)
}

// HasMerge reports whether the program uses the tree-bus merge.
func (p *Program) HasMerge() bool { return p.MergeSrc.Len > 0 }

// Validate checks slot bounds of every instruction.
func (p *Program) Validate() error {
	check := func(s Slot, what string) error {
		if s.Len == 0 {
			return nil
		}
		if s.Base < 0 || s.Len < 0 || s.Base+s.Len > p.Slots {
			return fmt.Errorf("engine: %s slot %v outside scratchpad of %d words", what, s, p.Slots)
		}
		return nil
	}
	for _, s := range []struct {
		s Slot
		n string
	}{{p.ModelSlot, "model"}, {p.InputSlot, "input"}, {p.ConstSlot, "const"},
		{p.MergeSrc, "mergeSrc"}, {p.MergeDst, "mergeDst"},
		{p.UpdatedSlot, "updated"}, {p.ConvSlot, "conv"}} {
		if err := check(s.s, s.n); err != nil {
			return err
		}
	}
	for _, list := range [][]Instr{p.PerTuple, p.PostMerge, p.RowUpdates, p.Convergence} {
		for _, in := range list {
			if err := check(in.Dst, "dst"); err != nil {
				return err
			}
			if err := check(in.A, "src1"); err != nil {
				return err
			}
			if err := check(in.B, "src2"); err != nil {
				return err
			}
			if in.Kind == KReduce {
				if in.GroupSize < 1 || in.Dst.Len < 1 {
					return fmt.Errorf("engine: reduce with %d groups of %d", in.Dst.Len, in.GroupSize)
				}
				last := in.A.Base + (in.Dst.Len-1)*in.GStride + (in.GroupSize-1)*in.EStride
				if last >= p.Slots || last < 0 {
					return fmt.Errorf("engine: reduce reads word %d outside scratchpad", last)
				}
			}
		}
	}
	return nil
}

// Config fixes the hardware instantiation of the template architecture.
type Config struct {
	Threads      int // parallel update-rule threads
	ACsPerThread int // analytic clusters per thread
	AUsPerAC     int // fixed to 8 in the paper for timing closure
	ClockHz      float64
}

// DefaultAUsPerAC mirrors the paper's fixed 8 AUs per AC.
const DefaultAUsPerAC = 8

// Lanes returns parallel scalar lanes per thread.
func (c Config) Lanes() int { return c.ACsPerThread * c.AUsPerAC }

// TotalAUs returns compute units across all threads.
func (c Config) TotalAUs() int { return c.Threads * c.Lanes() }

func (c Config) validate() error {
	if c.Threads < 1 || c.ACsPerThread < 1 || c.AUsPerAC < 1 {
		return fmt.Errorf("engine: invalid config %+v", c)
	}
	return nil
}
