package runtime

// Host-parallel pipelined epoch executor (paper §5.1.1).
//
// The modeled hardware always overlaps Strider page extraction with
// execution-engine compute; this file makes the *simulator* do the same
// on real cores. Each training epoch streams pages through three
// overlapping stages:
//
//	pool Pin -> Strider VM walk + deformat (W workers)  -> engine compute
//	                (bounded per-worker channels)          (coordinator)
//
// Worker w owns Strider VM w and processes pages pn ≡ w (mod W) in
// increasing order; the coordinator round-robins over the workers'
// output channels, which restores global page order. All modeled
// counters (access-engine cycles, engine cycles, simulated seconds) are
// charged by the coordinator in page order, so they are bit-identical
// to the serial path no matter how the host schedules the workers —
// parallelism changes wall-clock time only.
//
// A cross-epoch record cache completes the picture: once a relation's
// pages have been extracted (and the relation fits in the buffer pool,
// so later epochs would be pure pool hits with no modeled I/O), epochs
// ≥ 2 replay the cached flat-arena records and their per-page cycle
// counters instead of re-walking every heap page in the Go interpreter.
// The cache is invalidated by any heap mutation (storage.Relation
// generation counter) and by pool invalidation (DropCaches / DROP
// TABLE), so cold-cache experiments still re-read and re-charge disk.

import (
	hostrt "runtime"
	"sync"
	"time"

	"dana/internal/accessengine"
	"dana/internal/engine"
	"dana/internal/obs"
	"dana/internal/storage"
)

// defaultPipelineDepth is the per-worker bound on extracted-but-unconsumed
// page batches, keeping memory bounded for large tables.
const defaultPipelineDepth = 4

// recordCache holds extracted records per relation, keyed by name and
// validated against the relation's mutation generation, its identity,
// and the buffer pool's invalidation count.
type recordCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	rel     *storage.Relation
	gen     uint64
	poolGen uint64
	pages   []accessengine.PageResult
	rows    [][]float32 // concatenation of pages[i].Rows, in page order
}

// lookup returns the entry for rel if it is still valid: same relation
// object, unchanged heap generation, and no pool invalidation since fill.
func (c *recordCache) lookup(rel *storage.Relation, poolGen uint64) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent, ok := c.entries[rel.Name]
	if !ok || ent.rel != rel || ent.gen != rel.Generation() || ent.poolGen != poolGen {
		return nil
	}
	return ent
}

func (c *recordCache) store(ent *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[string]*cacheEntry)
	}
	c.entries[ent.rel.Name] = ent
}

func (c *recordCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = nil
}

// epochRunner executes training epochs for one Train call.
type epochRunner struct {
	s     *System
	ae    *accessengine.Engine
	rel   *storage.Relation
	m     *engine.Machine
	batch int

	// fits: the whole relation fits in the buffer pool, so page access
	// order cannot change eviction behavior — the precondition for both
	// out-of-order pinning (parallel workers) and the record cache
	// (epochs ≥ 2 would be pure pool hits, i.e. no modeled I/O).
	fits    bool
	workers int
	depth   int
	cacheOK bool
}

func (s *System) newEpochRunner(ae *accessengine.Engine, rel *storage.Relation, m *engine.Machine, batch int) *epochRunner {
	fits := rel.NumPages() <= s.DB.Pool.NumFrames()
	workers := s.Opts.Workers
	if workers <= 0 {
		workers = hostrt.GOMAXPROCS(0)
	}
	if workers > ae.NumStriders {
		workers = ae.NumStriders
	}
	if workers < 1 {
		workers = 1
	}
	// The engine-side batch fan-out never touches the buffer pool, so it
	// follows the configured worker count even when extraction must stay
	// serial below.
	m.SetHostWorkers(workers)
	if !fits {
		// Larger-than-pool tables keep the serial pin order so clock-sweep
		// eviction (and therefore modeled I/O) stays deterministic.
		workers = 1
	}
	depth := s.Opts.PipelineDepth
	if depth <= 0 {
		depth = defaultPipelineDepth
	}
	return &epochRunner{
		s: s, ae: ae, rel: rel, m: m, batch: batch,
		fits:    fits,
		workers: workers,
		depth:   depth,
		cacheOK: fits && !s.Opts.NoExtractCache,
	}
}

// runEpoch extracts every page of the relation and runs the engine over
// the tuples, overlapping the two when workers > 1. Cached epochs skip
// the buffer pool and Strider walk entirely, replaying the identical
// modeled counters. epoch is the zero-based epoch index (trace only).
func (r *epochRunner) runEpoch(epoch int) error {
	start := time.Now()
	cached := false
	var err error
	if r.cacheOK {
		if ent := r.s.cache.lookup(r.rel, r.s.DB.Pool.InvalidationCount()); ent != nil {
			cached = true
			r.s.obsCacheHits.Inc()
			err = r.replay(ent)
		} else {
			r.s.obsCacheMisses.Inc()
			err = r.extractEpoch()
		}
	} else {
		err = r.extractEpoch()
	}
	if err != nil {
		return err
	}
	wall := time.Since(start).Nanoseconds()
	r.s.obsEpochs.Inc()
	r.s.obsEpochWall.Add(wall)
	r.s.obsEpochHist.Observe(wall)
	if cached {
		r.s.obsEpochsCached.Inc()
		r.s.obs.Trace(obs.EvEpochCached, int64(epoch), wall)
	} else {
		r.s.obs.Trace(obs.EvEpoch, int64(epoch), wall)
	}
	return nil
}

// replay charges the cached per-page counters (in page order, preserving
// the group-max cycle model) and feeds the cached records to the engine.
func (r *epochRunner) replay(ent *cacheEntry) error {
	col := r.ae.NewCollector()
	for i := range ent.pages {
		col.Add(&ent.pages[i])
	}
	col.Flush()
	return r.m.RunEpoch(ent.rows, r.batch)
}

func (r *epochRunner) extractEpoch() error {
	stream := r.m.StreamEpoch(r.batch)
	col := r.ae.NewCollector()
	var ent *cacheEntry
	if r.cacheOK {
		ent = &cacheEntry{
			rel:     r.rel,
			gen:     r.rel.Generation(),
			poolGen: r.s.DB.Pool.InvalidationCount(),
			pages:   make([]accessengine.PageResult, 0, r.rel.NumPages()),
		}
	}
	// sink consumes extracted pages in page order on the coordinator
	// goroutine: modeled stats, engine compute, and cache fill.
	sink := func(res *accessengine.PageResult) error {
		col.Add(res)
		if err := stream.Feed(res.Rows); err != nil {
			return err
		}
		if ent != nil {
			ent.pages = append(ent.pages, *res)
			ent.rows = append(ent.rows, res.Rows...)
		}
		return nil
	}
	// When the cache is not retaining results, page buffers (arena +
	// row views) are recycled across pages instead of reallocated —
	// EpochStream copies anything it buffers, so a consumed PageResult
	// is immediately reusable.
	reuse := ent == nil
	var err error
	if r.workers > 1 {
		err = r.extractParallel(sink, reuse)
	} else {
		err = r.extractSerial(sink, reuse)
	}
	if err != nil {
		return err
	}
	col.Flush()
	if err := stream.Finish(); err != nil {
		return err
	}
	if ent != nil {
		r.s.cache.store(ent)
	}
	return nil
}

// extractSerial pins pages in groups of NumStriders (modeling the page
// buffers, and matching the pre-parallel executor's pool access order
// exactly) and extracts them one Strider VM at a time.
func (r *epochRunner) extractSerial(sink func(*accessengine.PageResult) error, reuse bool) error {
	n := r.rel.NumPages()
	group := make([]storage.Page, 0, r.ae.NumStriders)
	pinned := make([]uint32, 0, r.ae.NumStriders)
	var shared accessengine.PageResult
	flush := func() error {
		for i, pg := range group {
			res := &accessengine.PageResult{PageNo: int(pinned[i])}
			if reuse {
				res = &shared
				res.PageNo = int(pinned[i])
			}
			busyStart := time.Now()
			err := r.ae.ExtractPage(i, pg, res)
			r.s.obsWorkerBusy.Add(time.Since(busyStart).Nanoseconds())
			if err != nil {
				return err
			}
			if err := sink(res); err != nil {
				return err
			}
		}
		for _, pn := range pinned {
			if err := r.s.DB.Pool.Unpin(r.rel.Name, pn); err != nil {
				return err
			}
		}
		group = group[:0]
		pinned = pinned[:0]
		return nil
	}
	for pn := 0; pn < n; pn++ {
		pg, err := r.s.DB.Pool.Pin(r.rel.Name, uint32(pn))
		if err != nil {
			return err
		}
		group = append(group, pg)
		pinned = append(pinned, uint32(pn))
		if len(group) == r.ae.NumStriders {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// extractParallel fans pages out to r.workers goroutines (worker w owns
// Strider VM w and pages pn ≡ w mod W) and delivers results to the sink
// in page order by round-robining over the per-worker channels. Channel
// capacity bounds the number of in-flight page batches.
func (r *epochRunner) extractParallel(sink func(*accessengine.PageResult) error, reuse bool) error {
	n := r.rel.NumPages()
	w := r.workers
	outs := make([]chan *accessengine.PageResult, w)
	errCh := make(chan error, w)
	done := make(chan struct{})
	// When results are not retained by the cache, consumed PageResults
	// circulate back to the workers through a shared free list, bounding
	// allocation to the number of in-flight pages.
	var free chan *accessengine.PageResult
	if reuse {
		free = make(chan *accessengine.PageResult, w*(r.depth+2))
	}
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		outs[i] = make(chan *accessengine.PageResult, r.depth)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer close(outs[i])
			var busy time.Duration
			defer func() { r.s.obsWorkerBusy.Add(busy.Nanoseconds()) }()
			for pn := i; pn < n; pn += w {
				pg, err := r.s.DB.Pool.Pin(r.rel.Name, uint32(pn))
				if err != nil {
					errCh <- err
					return
				}
				var res *accessengine.PageResult
				if reuse {
					select {
					case res = <-free:
					default:
						res = new(accessengine.PageResult)
					}
				} else {
					res = new(accessengine.PageResult)
				}
				res.PageNo = pn
				busyStart := time.Now()
				err = r.ae.ExtractPage(i, pg, res)
				busy += time.Since(busyStart)
				// The arena holds copies of the tuple values, so the frame
				// can be released before the engine consumes the batch.
				if uerr := r.s.DB.Pool.Unpin(r.rel.Name, uint32(pn)); err == nil {
					err = uerr
				}
				if err != nil {
					errCh <- err
					return
				}
				select {
				case outs[i] <- res:
				case <-done:
					return
				}
			}
		}(i)
	}
	var err error
	for pn := 0; pn < n && err == nil; pn++ {
		res, ok := <-outs[pn%w]
		if !ok {
			err = <-errCh
			break
		}
		err = sink(res)
		if reuse && err == nil {
			select {
			case free <- res:
			default:
			}
		}
	}
	close(done)
	wg.Wait()
	if err != nil {
		return err
	}
	select {
	case werr := <-errCh:
		return werr
	default:
		return nil
	}
}
