package dana_test

import (
	"fmt"
	"log"

	"dana"
)

// Example trains the paper's linear-regression UDF over a SQL table on
// the simulated accelerator.
func Example() {
	eng, err := dana.Open(dana.Config{PageSize: 8 << 10, PoolBytes: 32 << 20})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.SQL(`CREATE TABLE pts (x float4, y float4);
		INSERT INTO pts VALUES (1, 2), (2, 4), (3, 6), (4, 8)`); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.RegisterUDFSource(`
mo = dana.model([1])
in = dana.input([1])
out = dana.output()
lr = dana.meta(0.05)
linearR = dana.algo(mo, in, out)
s = sigma(mo * in, 1)
grad = (s - out) * in
linearR.setModel(mo - lr * grad)
linearR.setEpochs(50)
`, 1); err != nil {
		log.Fatal(err)
	}
	res, err := eng.SQL(`SELECT * FROM dana.linearR('pts')`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("w = %.3f\n", res.Rows[0][1])
	// Output:
	// w = 2.000
}

// ExampleEngine_TrainMADlib compares the in-database CPU baseline with
// the accelerated path on the same buffer pool.
func ExampleEngine_TrainMADlib() {
	eng, err := dana.Open(dana.Config{PageSize: 8 << 10, PoolBytes: 32 << 20})
	if err != nil {
		log.Fatal(err)
	}
	d, err := eng.LoadWorkload("Blog Feedback", 0.005, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.TrainMADlib(d.Rel.Name, dana.LinearRegression{NFeatures: 280, LR: 0.0018}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epochs=%d model=%d params\n", res.Epochs, len(res.Model))
	// Output:
	// epochs=3 model=280 params
}

// ExampleParseUDF shows the paper's Python-embedded DSL parser.
func ExampleParseUDF() {
	algo, err := dana.ParseUDF(`
mo = dana.model([4])
in = dana.input([4])
out = dana.output()
svm = dana.algo(mo, in, out)
margin = out * sigma(mo * in, 1)
ind = margin < 1
grad = 0.01 * mo - ind * (out * in)
svm.setModel(mo - 0.05 * grad)
merge_coef = dana.meta(16)
g = svm.merge(grad, merge_coef, "+")
svm.setEpochs(5)
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(algo.Name, algo.MergeCoef(), algo.Epochs)
	// Output:
	// svm 16 5
}
