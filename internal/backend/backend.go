// Package backend defines the unified execution-backend seam: one
// narrow interface behind which every way of training a registered UDF
// lives — the DAnA accelerator engine, the TABLA-style single-threaded
// design, the golden float64 CPU trainer, and the greenplum-style
// Sharded wrapper. The runtime integration layer speaks only this
// interface; a heterogeneous dispatcher classifies jobs (workload
// class, precision, size) and picks the cheapest capable backend by
// the internal/cost analytic model, with an explicit per-system
// override.
//
// The contract is enforced, not assumed: the conformance harness in
// conformance.go runs every registered backend through seeded scenarios
// and asserts the trichotomy — bit-identical modeled counters where
// Capabilities promise them, toleranced model bits against the
// backend's declared reference semantics elsewhere, and typed errors
// for unsupported jobs.
package backend

import (
	"errors"

	"dana/internal/cost"
	"dana/internal/dsl"
	"dana/internal/engine"
	"dana/internal/hdfg"
	"dana/internal/hwgen"
	"dana/internal/ml"
	"dana/internal/storage"
)

// Typed errors. Every "can't do that" outcome at the backend seam is
// one of these sentinels (possibly wrapped); the conformance suite
// rejects backends that fail untyped.
var (
	// ErrUnsupported reports a job outside the backend's declared
	// Capabilities (unknown workload class, wrong precision, ...).
	ErrUnsupported = errors.New("backend: job not supported")
	// ErrUnknownBackend reports a dispatch request naming no registered
	// backend.
	ErrUnknownBackend = errors.New("backend: unknown backend")
	// ErrNotConfigured reports RunEpoch/Score before Configure.
	ErrNotConfigured = errors.New("backend: not configured")
	// ErrNoFailover reports that no registered backend can absorb a
	// failover for the job.
	ErrNoFailover = errors.New("backend: no failover backend available")
)

// Class is a workload class at the dispatch granularity the repo's
// algorithms expose (the DSL has no class tag, so Classify derives it
// structurally from the hDFG).
type Class string

const (
	ClassLinear   Class = "linear"
	ClassLogistic Class = "logistic"
	ClassSVM      Class = "svm"
	ClassLRMF     Class = "lrmf"
)

// AllClasses lists every class the repo's workloads produce.
func AllClasses() []Class {
	return []Class{ClassLinear, ClassLogistic, ClassSVM, ClassLRMF}
}

// Precision names a backend's model-arithmetic width.
const (
	PrecisionFloat32 = "float32"
	PrecisionFloat64 = "float64"
)

// Classify derives the workload class from hDFG structure: row-sparse
// model updates mean a factorization; a sigmoid on the per-tuple path
// means logistic; an indicator comparison on the per-tuple path (the
// hinge-loss gate) means SVM; a bare linear combination is linear
// regression. Convergence-only nodes are excluded — every algorithm may
// compare its loss against a threshold without becoming a classifier.
func Classify(g *hdfg.Graph) Class {
	if g == nil {
		return ""
	}
	if len(g.RowUpdates) > 0 {
		return ClassLRMF
	}
	class := ClassLinear
	for _, n := range g.Nodes {
		if n.ConvOnly {
			continue
		}
		switch n.Op {
		case dsl.OpSigmoid:
			return ClassLogistic
		case dsl.OpLt, dsl.OpGt:
			class = ClassSVM
		}
	}
	return class
}

// Capabilities declares what a backend can run and which equivalence
// guarantees it makes. The conformance suite holds each backend to its
// own declaration.
type Capabilities struct {
	// Name is the backend's registered dispatch name.
	Name string
	// Classes lists the workload classes the backend accepts; any job
	// outside them must fail typed (ErrUnsupported).
	Classes []Class
	// Precision is the model-arithmetic width (PrecisionFloat32 for the
	// simulated FPGA datapaths, PrecisionFloat64 for reference CPU
	// training).
	Precision string
	// DeterministicCounters promises that two runs of the same job
	// produce bit-identical modeled hardware counters (Counters()).
	DeterministicCounters bool
	// BitExactModel promises the trained model matches the backend's
	// declared reference semantics bit-for-bit; otherwise ModelTolerance
	// bounds the divergence (CompareModels semantics).
	BitExactModel  bool
	ModelTolerance float64
	// MinBits/MaxBits declare the weave-precision window the backend can
	// read (MLWeaving any-precision extraction). Both zero means the
	// backend reads only full-width float tuples: it is admissible only
	// for jobs that request no weave precision (Job.Bits == 0). A nonzero
	// window means the backend serves only k-bit weave requests inside
	// it — full-width jobs never dispatch to it implicitly.
	MinBits int
	MaxBits int
	// Streaming backends consume the page-extraction pipeline
	// (Stream.Batches); non-streaming backends take materialized rows.
	Streaming bool
	// Accelerated backends model faultable accelerator hardware: they
	// are subject to injected cluster faults and are failover *sources*.
	Accelerated bool
	// Fallback marks a valid failover *target*: a backend that shares no
	// hardware with the accelerator and degrades with reference
	// precision.
	Fallback bool
}

// Supports reports whether the capability set covers class.
func (c Capabilities) Supports(class Class) bool {
	for _, k := range c.Classes {
		if k == class {
			return true
		}
	}
	return false
}

// Job describes one training request for dispatch and cost estimation:
// the classified workload plus the analytic-model inputs assembled by
// the integration layer (mirroring experiments.CostWorkload).
type Job struct {
	Class Class
	// Precision, when set, restricts dispatch to backends of that
	// arithmetic width ("" = any).
	Precision string
	// Bits, when set (1..32), requests k-bit weave extraction: only
	// backends whose Capabilities declare a covering [MinBits, MaxBits]
	// window are admissible. 0 requests the full-width float path.
	Bits int

	Tuples       int
	Columns      int
	Pages        int
	PageSize     int
	DatasetBytes int64
	Epochs       int
	MergeCoef    int
	ModelParams  int

	// Accelerator-side schedule inputs: the compiled engine program and
	// chosen design point (for cycle estimation), the Strider per-page
	// unpack cycles, and the per-tuple flop count for CPU-side models.
	Engine            *engine.Program
	Design            hwgen.Design
	StriderPageCycles int64
	FlopsPerTuple     int

	// Warm selects the warm-cache I/O model for cost estimates.
	Warm bool
}

// Workload converts the job to the shared analytic cost inputs; each
// backend fills in its own cycle figures before pricing it.
func (j Job) Workload() cost.Workload {
	return cost.Workload{
		Tuples:            j.Tuples,
		Columns:           j.Columns,
		Epochs:            j.Epochs,
		DatasetBytes:      j.DatasetBytes,
		Pages:             j.Pages,
		FlopsPerTuple:     j.FlopsPerTuple,
		ModelParams:       j.ModelParams,
		StriderPageCycles: j.StriderPageCycles,
		Striders:          j.Design.NumStriders,
	}
}

// FlopsPerTuple returns the per-update flop count for a classified
// graph, via the ml baseline the class corresponds to.
func FlopsPerTuple(class Class, g *hdfg.Graph) int {
	if g == nil || g.Model == nil {
		return 0
	}
	switch class {
	case ClassLogistic:
		return ml.Logistic{NFeatures: g.Model.Shape.Size()}.FlopsPerUpdate()
	case ClassSVM:
		return ml.SVM{NFeatures: g.Model.Shape.Size()}.FlopsPerUpdate()
	case ClassLRMF:
		return ml.LRMF{Rank: g.Model.Shape[1]}.FlopsPerUpdate()
	default:
		return ml.Linear{NFeatures: g.Model.Shape.Size()}.FlopsPerUpdate()
	}
}

// Cost is a backend's modeled end-to-end time for a job.
type Cost struct {
	Seconds   float64
	Breakdown cost.Breakdown
}

// Program is one prepared training job handed to Configure: the
// translated hDFG (reference semantics), the compiled engine program
// and design point (hardware semantics), and the initial model.
type Program struct {
	Graph *hdfg.Graph
	// Engine and EngineCfg drive engine-machine backends; CPU-class
	// backends ignore them (and accept their absence).
	Engine    *engine.Program
	EngineCfg engine.Config
	// Striders caps the in-process host fan-out (the design's Strider
	// count clamped by the integration layer; 0 = no cap).
	Striders int
	// MergeCoef is the gradient-merge batch size (< 1 = 1).
	MergeCoef int
	// PageSize and Tuples parameterize derived design points (TABLA).
	PageSize int
	Tuples   int
	// Bits is the weave read precision for any-precision backends
	// (0 = full width, 32 planes). Full-width backends ignore it.
	Bits int
	// Ranges, when set, pins the weave quantization ranges (one per
	// feature column). Nil lets the backend derive deterministic ranges
	// from the first epoch's tuples (per-column min/max, which is
	// delivery-order independent).
	Ranges []storage.WeaveRange
	// Init is the starting model (float64 view; nil = the class's
	// canonical initialization: zeros for GLMs, seeded small uniform
	// factors for LRMF).
	Init []float64
}

// Stream carries one epoch's tuples to RunEpoch in whichever of three
// forms the producer has. Exactly one is consumed per call:
//
//   - Batches streams float32 record batches in page order — the
//     accelerator extraction pipeline. Only Streaming backends take it.
//   - Rows32 is the materialized epoch in the float32 datapath width.
//   - Rows64 is the materialized epoch in float64 (values that have
//     been narrowed through float32 upstream, so both views name the
//     same numbers).
//
// Backends prefer the form matching their precision and convert
// otherwise (float32 -> float64 widening is exact).
type Stream struct {
	Batches func(emit func([][]float32) error) error
	Rows32  [][]float32
	Rows64  [][]float64
}

// Backend is the unified execution seam. Lifecycle: Configure once per
// training job, then RunEpoch per epoch (the caller owns epoch count
// and convergence policy, consulting Converger when implemented), then
// Model for the result. Score is inference over an explicit model and
// requires a prior Configure (for the graph's class and shapes).
type Backend interface {
	Capabilities() Capabilities
	// EstimateCost prices the job with the internal/cost analytic model;
	// unsupported jobs fail with ErrUnsupported.
	EstimateCost(job Job) (Cost, error)
	// Configure prepares the backend for one training job; unsupported
	// programs fail with ErrUnsupported.
	Configure(prog Program) error
	// RunEpoch consumes one epoch's tuple stream, updating the model.
	RunEpoch(st *Stream) error
	// Score returns one prediction per row for the given model (raw
	// margin for SVM, probability for logistic, dot products otherwise).
	// Rows may be full training tuples; only the feature prefix is read.
	Score(model []float64, rows [][]float64) ([]float64, error)
	// Model returns a copy of the current model state (float64 view).
	Model() []float64
	// SetModel replaces the model state (float64 view; values outside
	// the backend's precision are narrowed).
	SetModel(m []float64) error
}

// Trainer is the narrow inner surface composition wrappers (Sharded)
// need from a configured backend: epoch execution plus model state.
// Every Backend satisfies it.
type Trainer interface {
	RunEpoch(st *Stream) error
	Model() []float64
	SetModel(m []float64) error
}

// Converger is implemented by backends whose program carries a
// convergence check.
type Converger interface {
	Converged() (bool, error)
}

// CounterBackend exposes modeled hardware counters (engine cycle
// decomposition). Backends with no modeled hardware don't implement it.
type CounterBackend interface {
	Counters() engine.Stats
}

// Closer is implemented by backends holding releasable host resources
// (engine fan-out helpers).
type Closer interface {
	Close()
}
