package server

import (
	"errors"
	"fmt"
	"math"

	"dana/internal/algos"
	"dana/internal/cost"
	"dana/internal/datagen"
	"dana/internal/experiments"
)

// ErrUnsupportedWorkload marks job classes the server does not admit
// yet (sparse LRMF needs per-scale topology rescaling the estimator
// would have to mirror bit-for-bit; ROADMAP item 2's precision work is
// a better time to fold it in).
var ErrUnsupportedWorkload = errors.New("server: workload class not admitted")

// configKey is the configuration identity of a job: the hDFG/Strider
// program an instance must have loaded to run it. Training and scoring
// the same workload share a configuration, which is exactly the
// affinity the sequence-aware policy exploits for mixed traffic.
func configKey(workload string, merge int) string {
	return fmt.Sprintf("%s/m%d", workload, merge)
}

// costEstimator prices jobs with the same analytic model the backend
// dispatcher uses: it compiles each distinct (workload, scale, merge)
// once (hardware generation included), then evaluates cost.DAnA with
// the per-query SetupSec replaced by the planner's explicit
// reconfigure/reuse charge. Not safe for concurrent use; the Server
// serializes planning.
type costEstimator struct {
	env      experiments.Env
	compiled map[string]cost.Workload // workload|scale|merge -> cost inputs
	cache    map[string]Estimate      // full spec key -> estimate
}

func newCostEstimator(env experiments.Env) *costEstimator {
	return &costEstimator{
		env:      env,
		compiled: map[string]cost.Workload{},
		cache:    map[string]Estimate{},
	}
}

// effectiveMerge mirrors experiments.CompileWorkload's coefficient
// resolution so the estimator's configuration key matches what the
// tenant systems actually build.
func (e *costEstimator) effectiveMerge(merge int) int {
	if merge <= 0 {
		return e.env.MergeCoef
	}
	return merge
}

// scaledTuples mirrors datagen.Generate's tuple scaling so the modeled
// estimate prices the dataset the functional run will actually stream.
func scaledTuples(w datagen.Workload, scale float64) int {
	n := int(math.Round(float64(w.Tuples) * scale))
	if n < 64 {
		n = 64
	}
	return n
}

func (e *costEstimator) costWorkload(w datagen.Workload, scale float64, merge int) (cost.Workload, error) {
	ck := fmt.Sprintf("%s|%g|%d", w.Name, scale, merge)
	if cw, ok := e.compiled[ck]; ok {
		return cw, nil
	}
	ws := w
	ws.Tuples = scaledTuples(w, scale)
	comp, err := experiments.CompileWorkload(ws, e.env, merge)
	if err != nil {
		return cost.Workload{}, err
	}
	cw := comp.CostWorkload(e.env)
	e.compiled[ck] = cw
	return cw, nil
}

// Estimate implements Estimator.
func (e *costEstimator) Estimate(spec JobSpec) (Estimate, error) {
	scale := spec.Scale
	if scale <= 0 {
		scale = 1
	}
	sk := fmt.Sprintf("%s|%g|%d|%d|%d", spec.Workload, scale, spec.Merge, spec.Epochs, spec.Kind)
	if est, ok := e.cache[sk]; ok {
		return est, nil
	}
	w, err := datagen.ByName(spec.Workload)
	if err != nil {
		return Estimate{}, err
	}
	if w.Kind == algos.KindLRMF {
		return Estimate{}, fmt.Errorf("%w: %q is LRMF", ErrUnsupportedWorkload, spec.Workload)
	}
	merge := e.effectiveMerge(spec.Merge)
	cw, err := e.costWorkload(w, scale, merge)
	if err != nil {
		return Estimate{}, err
	}
	// Schedule against the epochs the functional run will execute: the
	// explicit budget when given, otherwise the workload's own, with the
	// accelerated-path convergence override disabled either way (the
	// planner charges what was asked for, not the luckiest outcome).
	if spec.Epochs > 0 {
		cw.Epochs = spec.Epochs
	}
	cw.DAnAEpochs = 0

	var svc float64
	if spec.Kind == KindScore {
		svc = cost.ScoreServiceSec(cw, e.env.Cost)
	} else {
		svc = cost.ServerServiceSec(cost.DAnA(cw, e.env.Cost, true).TotalSec, e.env.Cost)
	}
	est := Estimate{Key: configKey(spec.Workload, merge), ServiceSec: svc, Bytes: cw.DatasetBytes}
	e.cache[sk] = est
	return est, nil
}
