// Package fixture exercises the pinbalance analyzer: each `want`
// comment is a regexp the golden harness matches against the finding
// reported on that line; lines without `want` must stay silent.
package fixture

import "dana/internal/bufpool"

func decode(pg []byte) ([]byte, error) { return pg, nil }

// leakOnDecodeError reproduces the historical PR-4 extractSerial bug:
// the Pin's err is REUSED by decode, so the later `return nil, err`
// leaks the pinned page even though it looks like the Pin-failure exit.
func leakOnDecodeError(p *bufpool.Pool, pages []uint32) ([]byte, error) {
	var out []byte
	for _, pn := range pages {
		pg, err := p.Pin("t", pn) // want `pinned page is not unpinned`
		if err != nil {
			return nil, err
		}
		row, err := decode(pg)
		if err != nil {
			return nil, err // leaks pg: err no longer speaks for the Pin
		}
		out = append(out, row...)
		if err := p.Unpin("t", pn); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func discardResult(p *bufpool.Pool) {
	p.Pin("t", 0) // want `result of Pool.Pin discarded`
}

func leakPlain(p *bufpool.Pool) int {
	pg, err := p.Pin("t", 9) // want `pinned page is not unpinned`
	if err != nil {
		return 0
	}
	n := len(pg)
	return n
}

func balanced(p *bufpool.Pool) (byte, error) {
	pg, err := p.Pin("t", 1)
	if err != nil {
		return 0, err
	}
	b := pg[0]
	if err := p.Unpin("t", 1); err != nil {
		return 0, err
	}
	return b, nil
}

func deferred(p *bufpool.Pool) (int, error) {
	pg, err := p.Pin("t", 2)
	if err != nil {
		return 0, err
	}
	defer p.Unpin("t", 2)
	return len(pg), nil
}

func handoffAppend(p *bufpool.Pool, sink *[][]byte) error {
	pg, err := p.Pin("t", 3)
	if err != nil {
		return err
	}
	*sink = append(*sink, pg)
	return nil
}

func flushClosure(p *bufpool.Pool, pages []uint32) error {
	var pinned []uint32
	flush := func() {
		for _, pn := range pinned {
			_ = p.Unpin("t", pn)
		}
		pinned = pinned[:0]
	}
	for _, pn := range pages {
		_, err := p.Pin("t", pn)
		if err != nil {
			return err
		}
		pinned = append(pinned, pn)
		if len(pinned) >= 4 {
			flush()
		}
	}
	flush()
	return nil
}

func suppressed(p *bufpool.Pool) {
	//danalint:ignore pinbalance -- fixture: exercising the suppression directive itself
	pg, err := p.Pin("t", 4)
	_ = pg
	_ = err
}
