package lint

// golifecycle enforces goroutine join discipline and lock ordering in
// the packages where instance concurrency lives (internal/server and
// internal/runtime — matched by package name so fixtures and scratch
// modules participate). Two checks:
//
//  1. Bounded join: every `go` statement must (a) signal completion —
//     a WaitGroup.Done, a channel close, or a channel send inside the
//     goroutine — and (b) be joined by the spawning body — a Wait or a
//     receive/range on the SAME object — on every CFG path from the
//     spawn to the function's exit. A join that exists but is skipped
//     on one early-return path is reported: that is exactly the shape
//     of a tenant goroutine outliving Drain. Goroutines whose target
//     is not a function literal (go t.run()) are matched loosely: any
//     join operation in the spawner counts, since the completion
//     signal is out of view.
//
//  2. Lock order: the module lock-order graph (intra-function
//     acquisitions plus locks-held-at-call-site × callee transitive
//     lock sets, see summary.go) must be acyclic. A cycle — including
//     the self-loop of re-acquiring a lock already held, since lock
//     identity is normalized per type and field — is reported at every
//     participating edge in the current package.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// GoLifecycle enforces bounded goroutine joins and consistent lock
// order in internal/server and internal/runtime.
var GoLifecycle = &Analyzer{
	Name: "golifecycle",
	Doc: "go statements in server/runtime packages need a bounded join " +
		"(WaitGroup or channel, on all CFG paths) and mutexes must be " +
		"acquired in a consistent module-wide order",
	Run: runGoLifecycle,
}

// goLifecyclePkgs names the packages under join discipline.
var goLifecyclePkgs = map[string]bool{"server": true, "runtime": true}

func runGoLifecycle(pass *Pass) error {
	if !goLifecyclePkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoJoins(pass, fd)
		}
	}
	checkLockOrder(pass)
	return nil
}

// checkGoJoins verifies every go statement in fd (grouped by its
// nearest enclosing function body, since the CFG does not enter
// literals) against the bounded-join rule.
func checkGoJoins(pass *Pass, fd *ast.FuncDecl) {
	pkg := pass.Unit
	byBody := map[*ast.BlockStmt][]*ast.GoStmt{}
	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		body := fd.Body
		for i := len(stack) - 1; i >= 0; i-- {
			if lit, ok := stack[i].(*ast.FuncLit); ok {
				body = lit.Body
				break
			}
		}
		byBody[body] = append(byBody[body], g)
		return true
	})
	var bodies []*ast.BlockStmt
	for b := range byBody {
		bodies = append(bodies, b)
	}
	sort.Slice(bodies, func(i, j int) bool { return bodies[i].Pos() < bodies[j].Pos() })
	for _, body := range bodies {
		for _, g := range byBody[body] {
			if ok, why := goStmtJoined(pkg, body, g); !ok {
				pass.Reportf(g.Pos(), "go statement %s", why)
			}
		}
	}
}

// goStmtJoined decides the bounded-join rule for one go statement
// inside body. Shared with tenantflow's goroutine-capture sink.
func goStmtJoined(pkg *Package, body *ast.BlockStmt, g *ast.GoStmt) (bool, string) {
	signals, loose := completionSignals(pkg, g)
	if !loose && len(signals) == 0 {
		return false, "spawns a goroutine that signals no completion " +
			"(no WaitGroup.Done, channel close, or channel send) — its lifetime is unbounded"
	}
	joined := func(n ast.Node) bool { return containsJoinOp(pkg, n, signals, loose) }
	cfg := NewCFG(body)
	spawn := blockContaining(cfg, g)
	if spawn == nil {
		// The spawn sits inside a nested literal the CFG skipped;
		// grouping in checkGoJoins prevents this, but fail open.
		return true, ""
	}
	// Scan the spawn's own block after the go statement first.
	past := false
	for _, n := range spawn.Nodes {
		if n == ast.Node(g) || containsPos(n, g.Pos()) && n.Pos() <= g.Pos() {
			past = true
			continue
		}
		if past && joined(n) {
			return true, ""
		}
	}
	if !past {
		return true, ""
	}
	// All-paths check: can Exit be reached from here without passing a
	// join node?
	visited := map[*Block]bool{spawn: true}
	var leak func(b *Block) bool
	leak = func(b *Block) bool {
		for _, e := range b.Succs {
			next := e.To
			if visited[next] {
				continue
			}
			if next == cfg.Exit {
				return true
			}
			visited[next] = true
			blocked := false
			for _, n := range next.Nodes {
				if joined(n) {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			if leak(next) {
				return true
			}
		}
		return false
	}
	if leak(spawn) {
		return false, "has no bounded join on some path from spawn to return " +
			"(WaitGroup.Wait or channel receive on its completion signal must dominate every exit)"
	}
	return true, ""
}

// completionSignals collects the objects the goroutine signals on:
// receivers of WaitGroup.Done, operands of close(), channels sent to.
// loose is true when the go target is not a literal, so the signal set
// is out of view and any join operation should match.
func completionSignals(pkg *Package, g *ast.GoStmt) (map[types.Object]bool, bool) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return nil, true
	}
	signals := map[types.Object]bool{}
	info := pkg.TypesInfo
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if isWaitGroupRecv(info, sel) {
					if o := rootObject(info, sel.X); o != nil {
						signals[o] = true
					}
				}
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					if o := rootObject(info, n.Args[0]); o != nil {
						signals[o] = true
					}
				}
			}
		case *ast.SendStmt:
			if o := rootObject(info, n.Chan); o != nil {
				signals[o] = true
			}
		}
		return true
	})
	return signals, false
}

// containsJoinOp reports whether node n performs a join operation —
// WaitGroup.Wait, channel receive, or range over a channel — on one of
// the signal objects (or any such operation when loose).
func containsJoinOp(pkg *Package, n ast.Node, signals map[types.Object]bool, loose bool) bool {
	info := pkg.TypesInfo
	match := func(x ast.Expr) bool {
		if loose {
			return true
		}
		o := rootObject(info, x)
		return o != nil && signals[o]
	}
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		switch c := c.(type) {
		case *ast.FuncLit:
			return false // a join inside another goroutine does not join this one
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if isWaitGroupRecv(info, sel) && match(sel.X) {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if c.Op == token.ARROW && isChannel(info.Types[c.X].Type) && match(c.X) {
				found = true
			}
		case *ast.RangeStmt:
			if isChannel(info.Types[c.X].Type) && match(c.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isWaitGroupRecv reports whether sel selects a method on sync.WaitGroup.
func isWaitGroupRecv(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// isChannel reports whether t's underlying type is a channel.
func isChannel(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// blockContaining finds the CFG block holding the statement.
func blockContaining(cfg *CFG, stmt ast.Node) *Block {
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if n == stmt || containsPos(n, stmt.Pos()) {
				return b
			}
		}
	}
	return nil
}

// checkLockOrder reports lock-order-graph cycles at every participating
// edge whose acquisition site is in the current package.
func checkLockOrder(pass *Pass) {
	m := pass.Mod
	if m == nil || len(m.LockEdges) == 0 {
		return
	}
	adj := map[string]map[string]bool{}
	for _, e := range m.LockEdges {
		if adj[e.From] == nil {
			adj[e.From] = map[string]bool{}
		}
		adj[e.From][e.To] = true
	}
	reachMemo := map[string]map[string]bool{}
	var reaches func(from, to string, seen map[string]bool) bool
	reaches = func(from, to string, seen map[string]bool) bool {
		if from == to {
			return true
		}
		if seen[from] {
			return false
		}
		seen[from] = true
		for _, next := range sortedKeys(adj[from]) {
			if reaches(next, to, seen) {
				return true
			}
		}
		return false
	}
	reach := func(from, to string) bool {
		if byTo, ok := reachMemo[from]; ok {
			if v, ok := byTo[to]; ok {
				return v
			}
		} else {
			reachMemo[from] = map[string]bool{}
		}
		v := reaches(from, to, map[string]bool{})
		reachMemo[from][to] = v
		return v
	}
	reported := map[string]bool{}
	for _, e := range m.LockEdges {
		fi, ok := m.Funcs[e.Fn]
		if !ok || fi.Pkg != pass.Unit {
			continue
		}
		key := e.From + "\x00" + e.To + "\x00" + fmt.Sprint(e.Pos)
		if reported[key] {
			continue
		}
		if e.From == e.To {
			reported[key] = true
			pass.Reportf(e.Pos, "lock %s acquired while already held (self-cycle in the lock-order graph)", e.To)
			continue
		}
		if reach(e.To, e.From) {
			reported[key] = true
			pass.Reportf(e.Pos, "lock %s acquired while holding %s, but the module lock-order graph also orders %s before %s: inconsistent lock order (deadlock hazard)",
				e.To, e.From, e.To, e.From)
		}
	}
}
