package experiments

// Precision sweep: the MLWeaving any-precision tradeoff curve. Each
// sweep point trains a seeded scenario through the weave backend at k
// bits per feature and reports the modeled link transfer alongside the
// epochs the quantized run needed to reach the golden float64 trainer's
// loss (within a per-precision margin).
//
// The sweep doubles as an executable proof of the data path's
// contracts; PrecisionSweep returns an error — and `danabench -exp
// precision` exits non-zero — if any of these break:
//
//  1. modeled transfer seconds are monotone non-increasing as k drops
//     (fewer planes, fewer bytes);
//  2. a full-width (k=32) weave run on range-grid data is bit-identical
//     to the accelerator path — same model bits, same modeled counters;
//  3. every k<32 run converges within its toleranced epoch budget.

import (
	"fmt"
	"math"

	"dana/internal/backend"
	"dana/internal/cost"
	"dana/internal/ml"
	"dana/internal/storage"
	"dana/internal/weaving"
)

// PrecisionBits is the sweep's read-precision ladder, full width first.
var PrecisionBits = []int{32, 16, 8, 4, 2, 1}

// PrecisionSeeds are the committed scenario seeds the sweep trains
// (a logistic-regression and an SVM workload; see backend.GenScenario).
var PrecisionSeeds = []int64{1, 2}

// PrecisionRow is one (scenario, bits) sweep point.
type PrecisionRow struct {
	Scenario      string
	Seed          int64
	Bits          int
	TransferBytes int64   // per-epoch effective link bytes at k planes
	TransferSec   float64 // per-epoch modeled link time
	Epochs        int     // epochs to reach the golden loss + margin
	Budget        int     // epoch allowance at this precision
	Loss          float64 // final mean loss on the original tuples
	GoldenLoss    float64 // golden float64 trainer's loss
	Margin        float64 // allowed slack over the golden loss
	FullWidthID   bool    // k=32 only: bit-identical to the accelerator
}

// precisionEpochBudget mirrors the MLWeaving observation that coarse
// quantization needs a few more passes to the same quality.
func precisionEpochBudget(epochs, bits int) int {
	switch {
	case bits >= 8:
		return epochs
	case bits >= 4:
		return 2 * epochs
	default:
		return 4 * epochs
	}
}

// precisionLossMargin is the allowed slack over the golden trainer's
// loss: the 2⁻ᵏ quantization floor plus a small float32 allowance.
func precisionLossMargin(bits int) float64 {
	return 1.5*math.Pow(2, -float64(bits)) + 0.02
}

// snapScenarioToGrid rewrites the scenario's features onto the 2⁻²³
// grid of the fixed range {Offset: -1, Scale: 2}, so a full-width weave
// read reconstructs every value bit-for-bit and the k=32 identity leg
// is exact, not toleranced.
func snapScenarioToGrid(sc *backend.Scenario, nfeat int) {
	snap := func(v float64) float64 {
		n := math.Round((v + 1) * (1 << 23))
		if n < 0 {
			n = 0
		}
		if n > (1<<24)-1 {
			n = (1 << 24) - 1
		}
		return n/(1<<23) - 1
	}
	for i, t := range sc.Tuples {
		for c := 0; c < nfeat; c++ {
			t[c] = snap(t[c])
			sc.Rows32[i][c] = float32(t[c])
		}
	}
}

// PrecisionSweep trains the committed scenarios across PrecisionBits
// and verifies the three contracts above at every point.
func PrecisionSweep(env Env) ([]PrecisionRow, error) {
	benv := backend.Env{Cost: env.Cost, FPGA: env.FPGA, Workers: 1, Segments: env.Segments}
	var rows []PrecisionRow
	for _, seed := range PrecisionSeeds {
		sc := backend.GenScenario(seed)
		p, err := backend.BuildProgram(sc, benv)
		if err != nil {
			return nil, err
		}
		nfeat := sc.Spec.TupleWidth() - 1
		snapScenarioToGrid(&sc, nfeat)

		algo := sc.Spec.Algorithm()
		golden, err := backend.GoldenReference(sc)
		if err != nil {
			return nil, err
		}
		goldenLoss := ml.MeanLoss(algo, golden, sc.Tuples)

		// The accelerator path on the same grid rows: the k=32 identity
		// target.
		accel := backend.NewAccel(benv)
		if err := accel.Configure(p); err != nil {
			return nil, err
		}
		epochs := sc.Spec.Epochs
		if epochs < 1 {
			epochs = 1
		}
		for e := 0; e < epochs; e++ {
			if err := accel.RunEpoch(&backend.Stream{Rows32: sc.Rows32}); err != nil {
				return nil, err
			}
		}

		g := weaving.RelationGeometry(len(sc.Tuples), nfeat, p.PageSize)
		prevTransfer := math.Inf(1)
		for _, bits := range PrecisionBits {
			w := cost.Workload{
				Pages:           g.Pages,
				WeaveBits:       bits,
				WeaveFixedBytes: g.FixedBytes,
				WeaveBitBytes:   g.BitBytes,
			}
			transfer := cost.TransferSec(w, env.Cost)
			if transfer > prevTransfer {
				return nil, fmt.Errorf("precision sweep: seed %d: transfer %.9g s at %d bits exceeds %.9g s at higher precision (monotone non-increasing required)",
					seed, transfer, bits, prevTransfer)
			}
			prevTransfer = transfer

			pw := p
			pw.Bits = bits
			pw.Ranges = gridRanges(nfeat)
			be := backend.NewWeave(benv)
			if err := be.Configure(pw); err != nil {
				return nil, err
			}
			budget := precisionEpochBudget(epochs, bits)
			margin := precisionLossMargin(bits)
			ran, loss := 0, math.Inf(1)
			for e := 1; e <= budget; e++ {
				if err := be.RunEpoch(&backend.Stream{Rows32: sc.Rows32}); err != nil {
					return nil, err
				}
				ran = e
				loss = ml.MeanLoss(algo, be.Model(), sc.Tuples)
				// The full-width run never stops early: the identity leg
				// below compares it against the accelerator's full epoch
				// schedule.
				if bits < 32 && loss <= goldenLoss+margin {
					break
				}
			}
			if loss > goldenLoss+margin {
				return nil, fmt.Errorf("precision sweep: seed %d at %d bits: loss %.6f after %d epochs never reached golden %.6f + margin %.6f",
					seed, bits, loss, budget, goldenLoss, margin)
			}
			row := PrecisionRow{
				Scenario:      string(sc.Spec.Kind),
				Seed:          seed,
				Bits:          bits,
				TransferBytes: g.EffectiveBytes(bits),
				TransferSec:   transfer,
				Epochs:        ran,
				Budget:        budget,
				Loss:          loss,
				GoldenLoss:    goldenLoss,
				Margin:        margin,
			}
			if bits == 32 {
				if ran != epochs {
					return nil, fmt.Errorf("precision sweep: seed %d: full-width run did %d epochs, accelerator schedule has %d", seed, ran, epochs)
				}
				if err := fullWidthIdentity(accel, be); err != nil {
					return nil, fmt.Errorf("precision sweep: seed %d: %w", seed, err)
				}
				row.FullWidthID = true
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// gridRanges pins every feature to the fixed {-1, 2} quantization range
// of the grid snap.
func gridRanges(nfeat int) []storage.WeaveRange {
	ranges := make([]storage.WeaveRange, nfeat)
	for i := range ranges {
		ranges[i] = storage.WeaveRange{Offset: -1, Scale: 2}
	}
	return ranges
}

// fullWidthIdentity requires the full-width weave run to be
// indistinguishable from the accelerator path: bit-identical model and
// bit-identical modeled counters.
func fullWidthIdentity(accel *backend.Accel, weave *backend.Weave) error {
	am, wm := accel.Model(), weave.Model()
	if len(am) == 0 || len(am) != len(wm) {
		return fmt.Errorf("full-width identity: model lengths %d vs %d", len(am), len(wm))
	}
	for i := range am {
		if math.Float64bits(am[i]) != math.Float64bits(wm[i]) {
			return fmt.Errorf("full-width identity: model[%d] %v (accelerator) != %v (weave@32)", i, am[i], wm[i])
		}
	}
	if ac, wc := accel.Counters(), weave.Counters(); ac != wc {
		return fmt.Errorf("full-width identity: counters diverge:\n  accelerator=%+v\n  weave=%+v", ac, wc)
	}
	return nil
}

// FormatPrecision renders one sweep row for the danabench table.
func FormatPrecision(r PrecisionRow) string {
	id := ""
	if r.FullWidthID {
		id = " =accel"
	}
	return fmt.Sprintf("%-10s %2d bits  %9d B/epoch  %.6g s  epochs %d/%d  loss %.4f (golden %.4f +%.4f)%s",
		r.Scenario, r.Bits, r.TransferBytes, r.TransferSec, r.Epochs, r.Budget, r.Loss, r.GoldenLoss, r.Margin, id)
}
