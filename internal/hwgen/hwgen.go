// Package hwgen implements DAnA's hardware generator (paper §6.1): given
// the compiled program, the FPGA's resources (Table 4), the database page
// layout, and the merge coefficient, it splits BRAM between page buffers
// (Striders) and thread scratchpads, sizes the AU/AC array from the DSP
// budget, and runs the restricted design-space exploration that balances
// single-thread performance against multi-thread parallelism using the
// static performance estimator.
package hwgen

import (
	"fmt"

	"dana/internal/engine"
)

// FPGA describes the target device.
type FPGA struct {
	Name      string
	LUTs      int
	FlipFlops int
	ClockHz   float64
	BRAMBytes int64
	DSPs      int
	// MaxAUs caps instantiable compute units (timing/placement limit;
	// 1024 on UltraScale+ per §7.2).
	MaxAUs int
	// OffChipBytesPerSec is the AXI/PCIe bandwidth into the FPGA.
	OffChipBytesPerSec float64
}

// VU9P returns the paper's Xilinx Virtex UltraScale+ VU9P (Table 4).
func VU9P() FPGA {
	return FPGA{
		Name:               "Xilinx Virtex UltraScale+ VU9P",
		LUTs:               1182_000,
		FlipFlops:          2364_000,
		ClockHz:            150e6,
		BRAMBytes:          44 << 20,
		DSPs:               6840,
		MaxAUs:             1024,
		OffChipBytesPerSec: 16e9, // PCIe gen3 x16
	}
}

// DSPsPerAU is the DSP-slice budget of one analytic unit's ALU
// (multiplier, divider share, and non-linear unit).
const DSPsPerAU = 6

// InstrBufferDepth is the per-AC instruction buffer capacity (BRAM
// blocks dedicated to control). Designs whose micro-instruction
// footprint exceeds it are infeasible.
const InstrBufferDepth = 4096

// MaxAUs returns how many AUs the device can instantiate.
func (f FPGA) MaxAUsAvailable() int {
	n := f.DSPs / DSPsPerAU
	if f.MaxAUs > 0 && n > f.MaxAUs {
		n = f.MaxAUs
	}
	return n
}

// Design is one fully-specified accelerator instantiation.
type Design struct {
	FPGA   FPGA
	Engine engine.Config

	NumStriders int // page buffers / striders instantiated
	PageBuffers int

	AUs             int     // total analytic units
	ScratchBytes    int64   // BRAM for thread scratchpads
	PageBufferBytes int64   // BRAM for page buffers
	BRAMBytes       int64   // total BRAM used
	Utilization     float64 // fraction of available AUs in use

	Est engine.CycleEstimate
}

// Params constrain the exploration.
type Params struct {
	PageSize  int
	MergeCoef int // maximum threads (merge coefficient)
	NumTuples int // training-set size used to score design points
	// MaxStriders caps page buffers (config-FSM fanout limit).
	MaxStriders int
	// MaxPageBuffers caps resident pages.
	MaxPageBuffers int
}

// DefaultParams fills unset fields.
func (p Params) withDefaults() Params {
	if p.MaxStriders == 0 {
		p.MaxStriders = 32
	}
	if p.MaxPageBuffers == 0 {
		p.MaxPageBuffers = 256
	}
	if p.MergeCoef < 1 {
		p.MergeCoef = 1
	}
	if p.NumTuples < 1 {
		p.NumTuples = 1 << 16
	}
	return p
}

// maxParallelism returns the widest slot any instruction writes — the
// useful lane count of one thread.
func maxParallelism(prog *engine.Program) int {
	m := 1
	scan := func(list []engine.Instr) {
		for _, in := range list {
			if in.Dst.Len > m {
				m = in.Dst.Len
			}
			if t := in.Dst.Len * in.GroupSize; in.Kind == engine.KReduce && t > m {
				m = t
			}
		}
	}
	scan(prog.PerTuple)
	scan(prog.PostMerge)
	scan(prog.RowUpdates)
	scan(prog.Convergence)
	return m
}

// Generate runs the design-space exploration and returns the chosen
// design (paper: "the smallest and best-performing design point").
func Generate(prog *engine.Program, fpga FPGA, params Params) (Design, error) {
	params = params.withDefaults()
	maxAUs := fpga.MaxAUsAvailable()
	maxACs := maxAUs / engine.DefaultAUsPerAC
	if maxACs < 1 {
		return Design{}, fmt.Errorf("hwgen: %s cannot fit a single analytic cluster", fpga.Name)
	}
	// A thread profits from at most ceil(maxParallelism/8) ACs.
	usefulACs := (maxParallelism(prog) + engine.DefaultAUsPerAC - 1) / engine.DefaultAUsPerAC
	if usefulACs < 1 {
		usefulACs = 1
	}
	if usefulACs > maxACs {
		usefulACs = maxACs
	}

	scratchPerThread := int64(prog.Slots) * 4
	var best *Design
	var bestCycles int64
	for acs := 1; acs <= usefulACs; acs++ {
		threads := maxACs / acs
		if threads > params.MergeCoef {
			threads = params.MergeCoef
		}
		if threads < 1 {
			continue
		}
		if len(prog.RowUpdates) > 0 && !prog.HasMerge() {
			threads = 1 // sparse row updates run single-threaded
		}
		cfg := engine.Config{
			Threads:      threads,
			ACsPerThread: acs,
			AUsPerAC:     engine.DefaultAUsPerAC,
			ClockHz:      fpga.ClockHz,
		}
		scratch := scratchPerThread * int64(threads)
		if scratch > fpga.BRAMBytes {
			continue // model/data do not fit
		}
		remaining := fpga.BRAMBytes - scratch
		buffers := int(remaining / int64(params.PageSize))
		if buffers > params.MaxPageBuffers {
			buffers = params.MaxPageBuffers
		}
		if buffers < 1 {
			continue
		}
		striders := buffers
		if striders > params.MaxStriders {
			striders = params.MaxStriders
		}
		// Control-store constraint: the per-AC selective-SIMD program
		// must fit the instruction buffers.
		ms := engine.Expand(prog, cfg)
		if ms.PerTupleMicroOps+ms.PostMergeMicroOps+ms.ConvMicroOps > InstrBufferDepth*cfg.ACsPerThread {
			continue
		}
		est := prog.Estimate(cfg)
		cycles := est.EpochCycles(params.NumTuples, params.MergeCoef, threads)
		d := Design{
			FPGA:            fpga,
			Engine:          cfg,
			NumStriders:     striders,
			PageBuffers:     buffers,
			AUs:             cfg.TotalAUs(),
			ScratchBytes:    scratch,
			PageBufferBytes: int64(buffers) * int64(params.PageSize),
			Utilization:     float64(cfg.TotalAUs()) / float64(maxAUs),
			Est:             est,
		}
		d.BRAMBytes = d.ScratchBytes + d.PageBufferBytes
		if best == nil || cycles < bestCycles ||
			(cycles == bestCycles && d.AUs < best.AUs) {
			bd := d
			best = &bd
			bestCycles = cycles
		}
	}
	if best == nil {
		return Design{}, fmt.Errorf("hwgen: no feasible design: program needs %d B of scratchpad per thread, FPGA has %d B BRAM",
			scratchPerThread, fpga.BRAMBytes)
	}
	return *best, nil
}

// TablaDesign returns the TABLA-baseline instantiation (Figure 16):
// single-threaded acceleration with the same per-thread resources but no
// Strider overlap and no multi-threading.
func TablaDesign(prog *engine.Program, fpga FPGA, params Params) (Design, error) {
	params = params.withDefaults()
	params.MergeCoef = 1
	d, err := Generate(prog, fpga, params)
	if err != nil {
		return Design{}, err
	}
	d.NumStriders = 0 // CPU-side data handoff
	return d, nil
}

// String renders a human-readable summary of the design.
func (d Design) String() string {
	return fmt.Sprintf("%s: %d threads x %d ACs (%d AUs, %.0f%% util), %d striders, %d page buffers, %.1f MB BRAM",
		d.FPGA.Name, d.Engine.Threads, d.Engine.ACsPerThread, d.AUs, 100*d.Utilization,
		d.NumStriders, d.PageBuffers, float64(d.BRAMBytes)/(1<<20))
}
