package lint

import (
	"go/ast"
	"go/token"
)

// CFG is an intra-function control-flow graph at statement granularity,
// built for path-sensitive analyzers (pinbalance). It models if/for/
// range/switch/select/return/break/continue/goto/fallthrough; function
// literals are NOT entered (they get their own CFG). Panics and other
// terminating calls end their block without an edge to Exit, so "on
// all paths to return" analyses skip crash paths.
type CFG struct {
	Entry  *Block
	Exit   *Block // virtual: reached by returns and normal fallthrough
	Blocks []*Block
}

// Block is a straight-line sequence of statements.
type Block struct {
	Nodes []ast.Node
	Succs []Edge
}

// Edge connects blocks; Cond is non-nil for conditional edges, taken
// when Cond evaluates to CondVal.
type Edge struct {
	To      *Block
	Cond    ast.Expr
	CondVal bool
}

type cfgBuilder struct {
	cfg *CFG

	// break/continue resolution: innermost-first stacks of targets,
	// each optionally labeled.
	breaks    []labeledTarget
	continues []labeledTarget

	labels map[string]*Block   // label -> block starting the labeled stmt
	gotos  map[string][]*Block // unresolved forward gotos

	// labelNext carries a LabeledStmt's label to the loop/switch it
	// labels, for labeled break/continue.
	labelNext string
}

type labeledTarget struct {
	label string
	block *Block
}

// NewCFG builds the graph for one function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: map[string]*Block{},
		gotos:  map[string][]*Block{},
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	last := b.stmts(body.List, b.cfg.Entry)
	if last != nil {
		b.edge(last, b.cfg.Exit, nil, false)
	}
	// Unresolved gotos (labels in unvisited regions) fall off the graph;
	// leaving them edgeless is the conservative choice for leak checks.
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block, cond ast.Expr, val bool) {
	from.Succs = append(from.Succs, Edge{To: to, Cond: cond, CondVal: val})
}

// stmts threads the statement list through cur; returns the block where
// control continues, or nil when control cannot fall through.
func (b *cfgBuilder) stmts(list []ast.Stmt, cur *Block) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable code still gets blocks so analyzers can inspect
			// it, but nothing flows in.
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

func (b *cfgBuilder) stmt(s ast.Stmt, cur *Block) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, cur)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		thenBlk := b.newBlock()
		b.edge(cur, thenBlk, s.Cond, true)
		after := b.newBlock()
		thenEnd := b.stmts(s.Body.List, thenBlk)
		if thenEnd != nil {
			b.edge(thenEnd, after, nil, false)
		}
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(cur, elseBlk, s.Cond, false)
			elseEnd := b.stmt(s.Else, elseBlk)
			if elseEnd != nil {
				b.edge(elseEnd, after, nil, false)
			}
		} else {
			b.edge(cur, after, s.Cond, false)
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head, nil, false)
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head, nil, false)
		}
		body := b.newBlock()
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			b.edge(head, body, s.Cond, true)
			b.edge(head, after, s.Cond, false)
		} else {
			b.edge(head, body, nil, false)
		}
		label := b.pendingLabel(s)
		b.breaks = append(b.breaks, labeledTarget{label, after})
		b.continues = append(b.continues, labeledTarget{label, post})
		bodyEnd := b.stmts(s.Body.List, body)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		if bodyEnd != nil {
			b.edge(bodyEnd, post, nil, false)
		}
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		head.Nodes = append(head.Nodes, s)
		b.edge(cur, head, nil, false)
		after := b.newBlock()
		body := b.newBlock()
		b.edge(head, body, nil, false)
		b.edge(head, after, nil, false)
		label := b.pendingLabel(s)
		b.breaks = append(b.breaks, labeledTarget{label, after})
		b.continues = append(b.continues, labeledTarget{label, head})
		bodyEnd := b.stmts(s.Body.List, body)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		if bodyEnd != nil {
			b.edge(bodyEnd, head, nil, false)
		}
		return after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		switch s := s.(type) {
		case *ast.SwitchStmt:
			if s.Init != nil {
				cur.Nodes = append(cur.Nodes, s.Init)
			}
			if s.Tag != nil {
				cur.Nodes = append(cur.Nodes, s.Tag)
			}
			body = s.Body
		case *ast.TypeSwitchStmt:
			if s.Init != nil {
				cur.Nodes = append(cur.Nodes, s.Init)
			}
			cur.Nodes = append(cur.Nodes, s.Assign)
			body = s.Body
		}
		after := b.newBlock()
		label := b.pendingLabel(s)
		b.breaks = append(b.breaks, labeledTarget{label, after})
		var clauseBodies []*Block
		hasDefault := false
		for _, c := range body.List {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			blk := b.newBlock()
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, e)
			}
			b.edge(cur, blk, nil, false)
			clauseBodies = append(clauseBodies, blk)
		}
		for i, c := range body.List {
			cc := c.(*ast.CaseClause)
			end := b.stmts(cc.Body, clauseBodies[i])
			if end != nil {
				// fallthrough (a BranchStmt) was handled inside stmts via
				// the clause chain below; normal fallout goes to after.
				if ft := fallthroughTarget(cc); ft && i+1 < len(clauseBodies) {
					b.edge(end, clauseBodies[i+1], nil, false)
				} else {
					b.edge(end, after, nil, false)
				}
			}
		}
		if !hasDefault {
			b.edge(cur, after, nil, false)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		return after

	case *ast.SelectStmt:
		after := b.newBlock()
		label := b.pendingLabel(s)
		b.breaks = append(b.breaks, labeledTarget{label, after})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			b.edge(cur, blk, nil, false)
			end := b.stmts(cc.Body, blk)
			if end != nil {
				b.edge(end, after, nil, false)
			}
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		return after

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.edge(cur, b.cfg.Exit, nil, false)
		return nil

	case *ast.BranchStmt:
		cur.Nodes = append(cur.Nodes, s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breaks, label); t != nil {
				b.edge(cur, t, nil, false)
			}
		case token.CONTINUE:
			if t := findTarget(b.continues, label); t != nil {
				b.edge(cur, t, nil, false)
			}
		case token.GOTO:
			if t := b.labels[label]; t != nil {
				b.edge(cur, t, nil, false)
			} else {
				b.gotos[label] = append(b.gotos[label], cur)
			}
		case token.FALLTHROUGH:
			// handled structurally by the switch clause chain
			return cur
		}
		return nil

	case *ast.LabeledStmt:
		head := b.newBlock()
		b.edge(cur, head, nil, false)
		b.labels[s.Label.Name] = head
		for _, from := range b.gotos[s.Label.Name] {
			b.edge(from, head, nil, false)
		}
		delete(b.gotos, s.Label.Name)
		b.labelNext = s.Label.Name
		return b.stmt(s.Stmt, head)

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, s)
		if isTerminatingCall(s.X) {
			return nil
		}
		return cur

	default:
		// Assign, Decl, Defer, Go, Send, IncDec, Empty: straight-line.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// labelNext carries the label of a LabeledStmt to the loop/switch it
// labels, for labeled break/continue.
func (b *cfgBuilder) pendingLabel(ast.Node) string {
	l := b.labelNext
	b.labelNext = ""
	return l
}

func findTarget(stack []labeledTarget, label string) *Block {
	if label == "" {
		if len(stack) == 0 {
			return nil
		}
		return stack[len(stack)-1].block
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

// fallthroughTarget reports whether the clause body ends in a
// fallthrough statement.
func fallthroughTarget(cc *ast.CaseClause) bool {
	if len(cc.Body) == 0 {
		return false
	}
	br, ok := cc.Body[len(cc.Body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// isTerminatingCall recognizes calls that never return, so paths through
// them are crash paths, not leak paths: panic, os.Exit, log.Fatal*,
// (*testing.T).Fatal*.
func isTerminatingCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		name := fn.Sel.Name
		if name == "Exit" || name == "Fatal" || name == "Fatalf" || name == "Fatalln" {
			if id, ok := fn.X.(*ast.Ident); ok {
				return id.Name == "os" || id.Name == "log" || id.Name == "t" || id.Name == "b"
			}
		}
	}
	return false
}
