// Package madlib re-implements the baseline the paper compares against:
// Apache-MADlib-style in-database machine learning. Training runs as a
// user-defined aggregate over a sequential heap scan — one incremental
// gradient (IGD) update per tuple, one pass per epoch, exactly the
// Bismarck architecture MADlib uses — pulling pages through the same
// buffer pool DAnA's Striders read.
package madlib

import (
	"fmt"

	"dana/internal/bufpool"
	"dana/internal/ml"
	"dana/internal/storage"
)

// Stats summarizes one training run.
type Stats struct {
	Epochs    int
	Tuples    int64 // tuple updates performed
	Pool      bufpool.Stats
	FinalLoss float64
}

// Trainer runs IGD over a relation through a buffer pool.
type Trainer struct {
	Pool *bufpool.Pool
	Rel  *storage.Relation
	Algo ml.Algorithm
}

// New builds a trainer; the relation must be attached to the pool.
func New(pool *bufpool.Pool, rel *storage.Relation, algo ml.Algorithm) (*Trainer, error) {
	if got, want := rel.Schema.NumCols(), algo.TupleWidth(); got != want {
		return nil, fmt.Errorf("madlib: relation %q has %d columns, %s needs %d", rel.Name, got, algo.Name(), want)
	}
	return &Trainer{Pool: pool, Rel: rel, Algo: algo}, nil
}

// scanEpoch performs one sequential scan applying fn per tuple.
func (t *Trainer) scanEpoch(fn func(vals []float64)) error {
	var vals []float64
	for pn := 0; pn < t.Rel.NumPages(); pn++ {
		pg, err := t.Pool.Pin(t.Rel.Name, uint32(pn))
		if err != nil {
			return err
		}
		for i := 0; i < pg.NumItems(); i++ {
			raw, err := pg.Item(i)
			if err != nil {
				t.Pool.Unpin(t.Rel.Name, uint32(pn))
				return err
			}
			vals = vals[:0]
			vals, err = storage.DecodeTuple(t.Rel.Schema, vals, raw)
			if err != nil {
				t.Pool.Unpin(t.Rel.Name, uint32(pn))
				return err
			}
			fn(vals)
		}
		if err := t.Pool.Unpin(t.Rel.Name, uint32(pn)); err != nil {
			return err
		}
	}
	return nil
}

// Train runs the given number of epochs and returns the model and stats.
func (t *Trainer) Train(epochs int) ([]float64, Stats, error) {
	if epochs < 1 {
		epochs = 1
	}
	model := ml.InitModel(t.Algo, 1)
	var st Stats
	for e := 0; e < epochs; e++ {
		err := t.scanEpoch(func(vals []float64) {
			t.Algo.Update(model, vals)
			st.Tuples++
		})
		if err != nil {
			return nil, st, err
		}
		st.Epochs++
	}
	// Final loss over one more read-only pass.
	var sum float64
	var n int64
	if err := t.scanEpoch(func(vals []float64) {
		sum += t.Algo.Loss(model, vals)
		n++
	}); err != nil {
		return nil, st, err
	}
	if n > 0 {
		st.FinalLoss = sum / float64(n)
	}
	st.Pool = t.Pool.Stats()
	return model, st, nil
}
