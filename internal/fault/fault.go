// Package fault is a seeded, deterministic fault-injection framework
// for the DAnA simulator. An Injector is threaded through the storage /
// buffer-pool / Strider / runtime layers and decides, per injection
// point, whether a given operation fails: simulated disk I/O errors and
// latency spikes, torn or bit-flipped pages (caught by the per-page
// checksums the buffer pool verifies), Strider VM traps, and analytic
// cluster stalls or hard failures.
//
// Decisions are pure functions of (seed, injection point, operation
// key): two runs with the same schedule inject the identical faults, and
// the decision for one operation never depends on how the host
// interleaved the others — so the chaos suite is reproducible even under
// the parallel pipelined executor. Transient faults clear after a
// configurable number of attempts on the same operation, which is what
// makes retry-based recovery observable; a negative attempt budget makes
// every injected fault persistent, forcing the clean-failure paths.
//
// Every error the framework injects (and every recovery-path error the
// layers derive from one) wraps one of the typed sentinels below, so
// callers discriminate with errors.Is across package boundaries.
package fault

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Typed sentinel errors crossing package boundaries. Match with
// errors.Is; the concrete errors carry operation context.
var (
	// ErrIOTransient is a (possibly transient) simulated disk read error.
	ErrIOTransient = errors.New("transient I/O error")
	// ErrTornPage is a page whose stamped checksum does not match its
	// contents (torn write or bit rot), detected on buffer-pool read.
	ErrTornPage = errors.New("torn page: checksum mismatch")
	// ErrVMTrap is a Strider VM trap: the page walker faulted.
	ErrVMTrap = errors.New("strider VM trap")
	// ErrVerifyReject is a Strider program the static verifier refused
	// to admit: dispatching it could trap the VM on a conforming page.
	ErrVerifyReject = errors.New("strider program rejected by verifier")
	// ErrClusterDown is a hard analytic-cluster failure.
	ErrClusterDown = errors.New("analytic cluster down")
	// ErrClusterStall is a wedged analytic cluster (watchdog fired).
	ErrClusterStall = errors.New("analytic cluster stalled")
	// ErrEpochTimeout is an epoch that exceeded its deadline.
	ErrEpochTimeout = errors.New("epoch deadline exceeded")
	// ErrWorkerQuarantined is raised when every Strider worker has been
	// quarantined and extraction cannot proceed on the accelerator.
	ErrWorkerQuarantined = errors.New("all strider workers quarantined")
)

// IsAcceleratorFault reports whether err indicates the simulated
// accelerator (Striders, execution engine, or analytic cluster) failed
// while the underlying storage is still readable — the class of errors
// the runtime degrades gracefully from by falling back to the CPU
// trainer. Storage-level failures (ErrTornPage, ErrIOTransient) are
// excluded: a CPU trainer reads the same pages, so falling back cannot
// help.
func IsAcceleratorFault(err error) bool {
	return errors.Is(err, ErrVMTrap) ||
		errors.Is(err, ErrClusterDown) ||
		errors.Is(err, ErrClusterStall) ||
		errors.Is(err, ErrEpochTimeout) ||
		errors.Is(err, ErrWorkerQuarantined)
}

// Point is an injection point: where in the stack a fault class fires.
type Point uint8

const (
	// PoolRead fails a buffer-pool miss's simulated disk read.
	PoolRead Point = iota
	// PoolLatency adds a simulated latency spike to a pool read.
	PoolLatency
	// PageTear zeroes the tail of the frame copy after a pool read
	// (a torn write: only a prefix of the page made it to disk).
	PageTear
	// PageBitFlip flips one bit of the frame copy after a pool read.
	PageBitFlip
	// StriderTrap faults a Strider VM on one (vm, page) walk.
	StriderTrap
	// WorkerStall delays an extraction worker (real wall-clock sleep,
	// visible to the executor's epoch deadline).
	WorkerStall
	// ClusterDown hard-fails the analytic cluster at an epoch boundary.
	ClusterDown
	// ClusterStall wedges the analytic cluster at an epoch boundary.
	ClusterStall

	// NumPoints is the number of injection points.
	NumPoints int = iota
)

var pointNames = [NumPoints]string{
	"pool_read", "pool_latency", "page_tear", "page_bitflip",
	"strider_trap", "worker_stall", "cluster_down", "cluster_stall",
}

func (p Point) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return fmt.Sprintf("point(%d)", int(p))
}

// Config is a fault schedule: per-point rates under one seed.
type Config struct {
	// Seed selects the pseudo-random fault pattern. The same seed and
	// rates reproduce the same faults on the same operations.
	Seed uint64
	// Rates is the per-point injection probability in [0, 1].
	Rates [NumPoints]float64
	// TransientAttempts is how many consecutive attempts of one faulted
	// operation fail before the fault clears (so a retry succeeds).
	// 0 means the default of 2; negative means faults never clear
	// (persistent), exhausting retry budgets.
	TransientAttempts int
	// StallDuration is the real sleep injected by WorkerStall and
	// ClusterStall (0 = 2ms).
	StallDuration time.Duration
	// LatencySpikeSec is the extra simulated seconds a PoolLatency spike
	// charges to the I/O clock (0 = 2ms simulated).
	LatencySpikeSec float64
}

const (
	defaultTransientAttempts = 2
	defaultStall             = 2 * time.Millisecond
	defaultLatencySpikeSec   = 2e-3
)

type attemptKey struct {
	point Point
	key   uint64
}

// Injector decides and applies faults. A nil *Injector is a valid,
// fully disabled injector: every hook is a nil-check returning the
// zero decision, so the instrumented layers carry no fault logic when
// injection is off.
type Injector struct {
	cfg    Config
	counts [NumPoints]atomic.Int64

	mu       sync.Mutex
	attempts map[attemptKey]int
}

// New builds an injector for the schedule.
func New(cfg Config) *Injector {
	if cfg.TransientAttempts == 0 {
		cfg.TransientAttempts = defaultTransientAttempts
	}
	if cfg.StallDuration == 0 {
		cfg.StallDuration = defaultStall
	}
	if cfg.LatencySpikeSec == 0 {
		cfg.LatencySpikeSec = defaultLatencySpikeSec
	}
	return &Injector{cfg: cfg, attempts: make(map[attemptKey]int)}
}

// Config returns the injector's schedule (zero value when nil).
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// Count returns how many times point p actually fired.
func (in *Injector) Count(p Point) int64 {
	if in == nil {
		return 0
	}
	return in.counts[p].Load()
}

// TotalCount sums fired faults across all points.
func (in *Injector) TotalCount() int64 {
	if in == nil {
		return 0
	}
	var t int64
	for p := 0; p < NumPoints; p++ {
		t += in.counts[p].Load()
	}
	return t
}

// Reset clears the attempt history (fired counts are kept), so a fresh
// training run sees the same fault pattern again.
func (in *Injector) Reset() {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.attempts = make(map[attemptKey]int)
	in.mu.Unlock()
}

// splitmix64 is the SplitMix64 finalizer: a full-avalanche 64-bit
// mixer, so nearby keys decide independently.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString folds a relation name into the decision key (FNV-1a).
func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// decide is the pure, order-independent fault decision for (point, key).
func (in *Injector) decide(p Point, key uint64) bool {
	rate := in.cfg.Rates[p]
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := splitmix64(in.cfg.Seed ^ (uint64(p)+1)*0xa24baed4963ee407 ^ splitmix64(key))
	return float64(h>>11)/float64(1<<53) < rate
}

// decideTransient is decide plus attempt tracking: a faulted operation
// keeps failing until it has been attempted TransientAttempts times,
// then clears — unless the schedule is persistent (negative budget).
func (in *Injector) decideTransient(p Point, key uint64) bool {
	if !in.decide(p, key) {
		return false
	}
	if in.cfg.TransientAttempts < 0 {
		in.counts[p].Add(1)
		return true
	}
	k := attemptKey{p, key}
	in.mu.Lock()
	in.attempts[k]++
	n := in.attempts[k]
	in.mu.Unlock()
	if n > in.cfg.TransientAttempts {
		return false
	}
	in.counts[p].Add(1)
	return true
}

func pageKey(rel string, pageNo uint32) uint64 {
	return hashString(rel) ^ uint64(pageNo)
}

// ReadFault decides whether the simulated disk read of (rel, pageNo)
// fails this attempt. The returned error wraps ErrIOTransient.
func (in *Injector) ReadFault(rel string, pageNo uint32) error {
	if in == nil {
		return nil
	}
	if in.decideTransient(PoolRead, pageKey(rel, pageNo)) {
		return fmt.Errorf("fault: injected read error on %s page %d: %w", rel, pageNo, ErrIOTransient)
	}
	return nil
}

// ReadLatencySec returns the extra simulated seconds to charge for the
// read of (rel, pageNo): a latency spike, or 0.
func (in *Injector) ReadLatencySec(rel string, pageNo uint32) float64 {
	if in == nil {
		return 0
	}
	if in.decide(PoolLatency, pageKey(rel, pageNo)) {
		in.counts[PoolLatency].Add(1)
		return in.cfg.LatencySpikeSec
	}
	return 0
}

// CorruptCopy possibly corrupts buf — the buffer pool's private frame
// copy of (rel, pageNo), never the heap source, so a retry re-reads
// intact bytes. It reports whether corruption was applied; the stamped
// page checksum catches it on verification.
func (in *Injector) CorruptCopy(rel string, pageNo uint32, buf []byte) bool {
	if in == nil || len(buf) == 0 {
		return false
	}
	key := pageKey(rel, pageNo)
	if in.decideTransient(PageTear, key) {
		// Torn write: only a prefix of the page reached the platter.
		cut := len(buf)/2 + int(splitmix64(key)%uint64(len(buf)/2+1))
		for i := cut; i < len(buf); i++ {
			buf[i] = 0
		}
		// A page whose tail was already all zeroes tears invisibly;
		// guarantee the checksum trips by flipping one cut-point bit.
		if cut < len(buf) {
			buf[cut] ^= 0x01
		} else {
			buf[len(buf)-1] ^= 0x01
		}
		return true
	}
	if in.decideTransient(PageBitFlip, key) {
		bit := splitmix64(key^0xb17f11b) % uint64(len(buf)*8)
		buf[bit/8] ^= 1 << (bit % 8)
		return true
	}
	return false
}

// TrapFault decides whether Strider VM vmIdx traps walking pageNo this
// attempt. Keying by (vm, page) makes both recovery paths observable:
// a transient trap clears on same-VM retry; a persistent trap follows
// the VM, so quarantining it and re-running the epoch on the healthy
// Striders succeeds.
func (in *Injector) TrapFault(vmIdx, pageNo int) error {
	if in == nil {
		return nil
	}
	key := (uint64(vmIdx)+1)<<40 ^ uint64(uint32(pageNo))
	if in.decideTransient(StriderTrap, key) {
		return fmt.Errorf("fault: injected trap in strider %d on page %d: %w", vmIdx, pageNo, ErrVMTrap)
	}
	return nil
}

// StallDelay returns a real sleep to inject into the extraction worker
// handling pageNo of epoch, or 0. The sleep is wall-clock, so it is
// what trips the executor's epoch deadline.
func (in *Injector) StallDelay(epoch, pageNo int) time.Duration {
	if in == nil {
		return 0
	}
	if in.decide(WorkerStall, uint64(uint32(epoch))<<32|uint64(uint32(pageNo))) {
		in.counts[WorkerStall].Add(1)
		return in.cfg.StallDuration
	}
	return 0
}

// ClusterFault decides whether the analytic cluster fails at the start
// of epoch: a hard failure (ErrClusterDown) or a stall that the
// watchdog converts into ErrClusterStall after StallDuration.
func (in *Injector) ClusterFault(epoch int) error {
	if in == nil {
		return nil
	}
	key := uint64(uint32(epoch))
	if in.decide(ClusterDown, key) {
		in.counts[ClusterDown].Add(1)
		return fmt.Errorf("fault: injected cluster failure at epoch %d: %w", epoch, ErrClusterDown)
	}
	if in.decide(ClusterStall, key) {
		in.counts[ClusterStall].Add(1)
		time.Sleep(in.cfg.StallDuration)
		return fmt.Errorf("fault: cluster wedged at epoch %d (watchdog after %v): %w",
			epoch, in.cfg.StallDuration, ErrClusterStall)
	}
	return nil
}

// BackoffSec returns the capped exponential backoff (in simulated
// seconds) to charge before retry attempt. base doubles per attempt and
// is capped at 32x.
func BackoffSec(attempt int, base float64) float64 {
	if base <= 0 {
		base = 1e-3
	}
	mult := 1 << attempt
	if attempt > 5 || mult > 32 {
		mult = 32
	}
	return base * float64(mult)
}
