package verify

import (
	"fmt"
	"math"

	"dana/internal/storage"
)

// Oracle A: storage round-trip. Values formed into tuples and inserted
// into pages must decode back identical, with dead/redirected line
// pointers skipped, null bitmaps honored, and varlena tails intact.

// valuesEqual requires bit-identity (the generator only emits values
// exactly representable by their column type).
func valuesEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// CheckStorageOracle validates the page and compares every decoded live
// tuple against the scenario's ground truth.
func (sc *PageScenario) CheckStorageOracle() error {
	if err := sc.Page.Validate(); err != nil {
		return fmt.Errorf("oracle A: %w", err)
	}
	s := sc.Schema
	next := 0 // index into ground truth
	for i := 0; i < sc.Page.NumItems(); i++ {
		id, err := sc.Page.ItemID(i)
		if err != nil {
			return fmt.Errorf("oracle A: %w", err)
		}
		if id.Flags != storage.LPNormal {
			if next < len(sc.LiveItems) && sc.LiveItems[next] == i {
				return fmt.Errorf("oracle A: item %d expected live, found state %d", i, id.Flags)
			}
			continue
		}
		if next >= len(sc.LiveItems) || sc.LiveItems[next] != i {
			return fmt.Errorf("oracle A: unexpected live item %d", i)
		}
		raw, err := sc.Page.Item(i)
		if err != nil {
			return fmt.Errorf("oracle A: item %d: %w", i, err)
		}
		vals, nulls, err := storage.DecodeTupleWithNulls(s, raw)
		if err != nil {
			return fmt.Errorf("oracle A: item %d: %w", i, err)
		}
		wantMask := sc.Nulls[next]
		for c := 0; c < s.NumCols(); c++ {
			wantNull := wantMask != nil && wantMask[c]
			if nulls[c] != wantNull {
				return fmt.Errorf("oracle A: item %d col %d: null=%v, want %v", i, c, nulls[c], wantNull)
			}
			want := sc.Rows[next][c]
			if wantNull {
				want = 0
			}
			if math.Float64bits(vals[c]) != math.Float64bits(want) {
				return fmt.Errorf("oracle A: item %d col %d: decoded %v, want %v", i, c, vals[c], want)
			}
		}
		if tail := sc.VarTails[next]; tail != nil {
			m, err := storage.DecodeTupleMeta(raw)
			if err != nil {
				return fmt.Errorf("oracle A: item %d: %w", i, err)
			}
			off := int(m.Hoff) + s.DataWidth()
			if off > len(raw) {
				return fmt.Errorf("oracle A: item %d: varlena tail offset %d beyond tuple of %d bytes", i, off, len(raw))
			}
			got, _, err := storage.DecodeVarlena(raw[off:])
			if err != nil {
				return fmt.Errorf("oracle A: item %d varlena tail: %w", i, err)
			}
			if len(got) != len(tail) {
				return fmt.Errorf("oracle A: item %d varlena tail: %d bytes, want %d", i, len(got), len(tail))
			}
			for j := range got {
				if got[j] != tail[j] {
					return fmt.Errorf("oracle A: item %d varlena tail byte %d: %#x, want %#x", i, j, got[j], tail[j])
				}
			}
		}
		next++
	}
	if next != len(sc.Rows) {
		return fmt.Errorf("oracle A: decoded %d live tuples, ground truth has %d", next, len(sc.Rows))
	}
	return nil
}

// CheckRelationOracle scans the relation and compares against ground
// truth, then vacuums and re-checks: reclaiming dead space must not
// perturb the survivors.
func (sc *RelationScenario) CheckRelationOracle() error {
	check := func(stage string) error {
		if err := sc.Rel.Validate(); err != nil {
			return fmt.Errorf("oracle A (%s): %w", stage, err)
		}
		var got [][]float64
		err := sc.Rel.Scan(func(_ storage.TID, vals []float64) error {
			got = append(got, append([]float64(nil), vals...))
			return nil
		})
		if err != nil {
			return fmt.Errorf("oracle A (%s): %w", stage, err)
		}
		if len(got) != len(sc.Rows) {
			return fmt.Errorf("oracle A (%s): scanned %d rows, want %d", stage, len(got), len(sc.Rows))
		}
		for i := range got {
			if !valuesEqual(got[i], sc.Rows[i]) {
				return fmt.Errorf("oracle A (%s): row %d: %v != %v", stage, i, got[i], sc.Rows[i])
			}
		}
		return nil
	}
	if err := check("pre-vacuum"); err != nil {
		return err
	}
	if err := sc.Rel.Vacuum(); err != nil {
		return fmt.Errorf("oracle A: vacuum: %w", err)
	}
	return check("post-vacuum")
}

// CheckInnoOracle decodes every record of every InnoDB page and
// compares against ground truth.
func (sc *InnoScenario) CheckInnoOracle() error {
	s := sc.Rel.Schema
	next := 0
	for p := 0; p < sc.Rel.NumPages(); p++ {
		page, err := sc.Rel.Page(p)
		if err != nil {
			return fmt.Errorf("oracle A (inno): %w", err)
		}
		recs, err := page.Records(s.DataWidth())
		if err != nil {
			return fmt.Errorf("oracle A (inno): page %d: %w", p, err)
		}
		for _, rec := range recs {
			if next >= len(sc.Rows) {
				return fmt.Errorf("oracle A (inno): more records than ground truth rows (%d)", len(sc.Rows))
			}
			vals, err := s.DecodeValues(nil, rec)
			if err != nil {
				return fmt.Errorf("oracle A (inno): record %d: %w", next, err)
			}
			if !valuesEqual(vals, sc.Rows[next]) {
				return fmt.Errorf("oracle A (inno): record %d: %v != %v", next, vals, sc.Rows[next])
			}
			next++
		}
	}
	if next != len(sc.Rows) {
		return fmt.Errorf("oracle A (inno): decoded %d records, want %d", next, len(sc.Rows))
	}
	return nil
}
