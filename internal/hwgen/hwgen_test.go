package hwgen

import (
	"strings"
	"testing"

	"dana/internal/compiler"
	"dana/internal/dsl"
	"dana/internal/engine"
	"dana/internal/hdfg"
)

func compileLinear(t *testing.T, nFeat, coef int) *engine.Program {
	t.Helper()
	a := dsl.NewAlgo("linearR")
	mo := a.Model(nFeat)
	in := a.Input(nFeat)
	out := a.Output()
	lr := a.Meta(0.1)
	s := dsl.Sigma(dsl.Mul(mo, in), 1)
	grad := dsl.Mul(dsl.Sub(s, out), in)
	moUp := dsl.Sub(mo, dsl.Mul(lr, grad))
	if coef > 1 {
		a.MustMerge(grad, coef, "+")
	}
	a.SetModel(moUp)
	a.SetEpochs(1)
	g, err := hdfg.Translate(a)
	if err != nil {
		t.Fatal(err)
	}
	p, err := compiler.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestVU9PMatchesTable4(t *testing.T) {
	f := VU9P()
	if f.LUTs != 1182000 || f.FlipFlops != 2364000 {
		t.Errorf("LUT/FF = %d/%d", f.LUTs, f.FlipFlops)
	}
	if f.ClockHz != 150e6 {
		t.Errorf("clock = %v", f.ClockHz)
	}
	if f.BRAMBytes != 44<<20 {
		t.Errorf("BRAM = %d", f.BRAMBytes)
	}
	if f.DSPs != 6840 {
		t.Errorf("DSPs = %d", f.DSPs)
	}
	// §7.2: "In UltraScale+ FPGA, maximum 1024 compute units can be
	// instantiated."
	if f.MaxAUsAvailable() != 1024 {
		t.Errorf("MaxAUsAvailable = %d, want 1024", f.MaxAUsAvailable())
	}
}

func TestGeneratePicksFeasibleDesign(t *testing.T) {
	p := compileLinear(t, 54, 64) // Remote Sensing topology
	d, err := Generate(p, VU9P(), Params{PageSize: 32 << 10, MergeCoef: 64, NumTuples: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if d.Engine.Threads < 1 || d.Engine.Threads > 64 {
		t.Errorf("threads = %d", d.Engine.Threads)
	}
	if d.AUs > VU9P().MaxAUsAvailable() {
		t.Errorf("AUs = %d over budget", d.AUs)
	}
	if d.BRAMBytes > VU9P().BRAMBytes {
		t.Errorf("BRAM = %d over budget", d.BRAMBytes)
	}
	if d.NumStriders < 1 || d.PageBuffers < d.NumStriders {
		t.Errorf("striders=%d buffers=%d", d.NumStriders, d.PageBuffers)
	}
	if !strings.Contains(d.String(), "threads") {
		t.Errorf("String() = %q", d.String())
	}
}

func TestMoreMergeCoefMoreThreads(t *testing.T) {
	p := compileLinear(t, 54, 2)
	d2, err := Generate(p, VU9P(), Params{PageSize: 32 << 10, MergeCoef: 2, NumTuples: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	p64 := compileLinear(t, 54, 64)
	d64, err := Generate(p64, VU9P(), Params{PageSize: 32 << 10, MergeCoef: 64, NumTuples: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	if d64.Engine.Threads <= d2.Engine.Threads {
		t.Errorf("threads: coef64 %d <= coef2 %d", d64.Engine.Threads, d2.Engine.Threads)
	}
	if d64.Utilization <= d2.Utilization {
		t.Errorf("utilization: coef64 %.2f <= coef2 %.2f", d64.Utilization, d2.Utilization)
	}
	e2 := d2.Est.EpochCycles(1<<18, 2, d2.Engine.Threads)
	e64 := d64.Est.EpochCycles(1<<18, 64, d64.Engine.Threads)
	if e64 >= e2 {
		t.Errorf("epoch cycles: coef64 %d >= coef2 %d", e64, e2)
	}
}

func TestBRAMInfeasibleRejected(t *testing.T) {
	p := compileLinear(t, 2000, 1)
	tiny := VU9P()
	tiny.BRAMBytes = 1 << 10 // 1 KB
	if _, err := Generate(p, tiny, Params{PageSize: 8 << 10}); err == nil {
		t.Error("design with 1 KB BRAM should be infeasible")
	}
}

func TestTablaDesignSingleThreadNoStriders(t *testing.T) {
	p := compileLinear(t, 54, 64)
	d, err := TablaDesign(p, VU9P(), Params{PageSize: 32 << 10, MergeCoef: 64})
	if err != nil {
		t.Fatal(err)
	}
	if d.Engine.Threads != 1 {
		t.Errorf("threads = %d", d.Engine.Threads)
	}
	if d.NumStriders != 0 {
		t.Errorf("striders = %d", d.NumStriders)
	}
}

func TestWideModelUsesMoreACsPerThread(t *testing.T) {
	narrow := compileLinear(t, 8, 16)
	wide := compileLinear(t, 2000, 16)
	dn, err := Generate(narrow, VU9P(), Params{PageSize: 32 << 10, MergeCoef: 16})
	if err != nil {
		t.Fatal(err)
	}
	dw, err := Generate(wide, VU9P(), Params{PageSize: 32 << 10, MergeCoef: 16})
	if err != nil {
		t.Fatal(err)
	}
	if dw.Engine.ACsPerThread <= dn.Engine.ACsPerThread {
		t.Errorf("ACs/thread: wide %d <= narrow %d", dw.Engine.ACsPerThread, dn.Engine.ACsPerThread)
	}
}

func TestDesignDeterministic(t *testing.T) {
	p := compileLinear(t, 54, 64)
	params := Params{PageSize: 32 << 10, MergeCoef: 64, NumTuples: 12345}
	d1, err := Generate(p, VU9P(), params)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(p, VU9P(), params)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Engine != d2.Engine || d1.NumStriders != d2.NumStriders {
		t.Errorf("non-deterministic design: %+v vs %+v", d1, d2)
	}
}
