package bufpool

import (
	"testing"

	"dana/internal/obs"
)

// TestObsMirrorsStats: the observability counters charged by the pool
// agree exactly with its Stats struct, and hits + misses accounts for
// every Pin request.
func TestObsMirrorsStats(t *testing.T) {
	r := testRelation(t, "t", 2000)
	p := newPool(t, 4, r)
	if r.NumPages() <= 4 {
		t.Fatalf("relation has %d pages; need more than the 4 pool frames", r.NumPages())
	}
	reg := obs.New()
	p.SetObs(reg)

	requests := int64(0)
	n := int(r.NumPages())
	// Two passes over a relation larger than the pool: misses, hits on
	// recently-used frames, evictions, and clock-sweep advances.
	for pass := 0; pass < 2; pass++ {
		for pn := 0; pn < n; pn++ {
			if _, err := p.Pin("t", uint32(pn)); err != nil {
				t.Fatal(err)
			}
			requests++
			if err := p.Unpin("t", uint32(pn)); err != nil {
				t.Fatal(err)
			}
		}
	}

	st := p.Stats()
	if st.Hits+st.Misses != requests {
		t.Fatalf("hits %d + misses %d != pin requests %d", st.Hits, st.Misses, requests)
	}
	if got := reg.Get(obs.PoolHits); got != st.Hits {
		t.Fatalf("obs hits %d != stats hits %d", got, st.Hits)
	}
	if got := reg.Get(obs.PoolMisses); got != st.Misses {
		t.Fatalf("obs misses %d != stats misses %d", got, st.Misses)
	}
	if got := reg.Get(obs.PoolEvictions); got != st.Evictions {
		t.Fatalf("obs evictions %d != stats evictions %d", got, st.Evictions)
	}
	if got := reg.Get(obs.PoolBytesRead); got != st.BytesRead {
		t.Fatalf("obs bytes read %d != stats bytes read %d", got, st.BytesRead)
	}
	if got := reg.GetFloat(obs.PoolIOSeconds); got != st.IOSeconds {
		t.Fatalf("obs io seconds %v != stats io seconds %v", got, st.IOSeconds)
	}
	if st.Evictions == 0 {
		t.Fatal("scenario produced no evictions; test is not exercising the sweep")
	}
	if reg.Get(obs.PoolSweepSteps) < st.Evictions {
		t.Fatalf("sweep steps %d < evictions %d: every eviction advances the clock at least once",
			reg.Get(obs.PoolSweepSteps), st.Evictions)
	}

	// Invalidation emits a trace event carrying the dropped-frame count.
	if err := p.Invalidate(); err != nil {
		t.Fatal(err)
	}
	evs := reg.Ring().Events()
	if len(evs) == 0 {
		t.Fatal("no trace events after Invalidate")
	}
	last := evs[len(evs)-1]
	if last.Name != obs.EvPoolInval || last.A <= 0 {
		t.Fatalf("last event %+v, want %s with dropped > 0", last, obs.EvPoolInval)
	}

	// Obs counters survive a stats reset: they are cumulative.
	p.ResetStats()
	if reg.Get(obs.PoolMisses) == 0 {
		t.Fatal("obs counters were reset along with Stats")
	}
}
