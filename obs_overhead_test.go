package dana

// Overhead guard for the observability layer: training with the
// counters enabled must cost < 5% extra wall time over obs.Noop on an
// end-to-end LR train. The obs charge sites run per page / per batch,
// not per tuple, so the real overhead is far below the gate; the gate
// exists so a future change that accidentally puts an instrument in a
// per-tuple loop fails loudly.

import (
	"sort"
	"testing"
	"time"
)

func trainWallOnce(t *testing.T, disable bool) time.Duration {
	t.Helper()
	eng, err := Open(Config{
		PageSize: 32 << 10, PoolBytes: 128 << 20,
		Workers: 1, NoExtractCache: true, DisableObs: disable,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := eng.LoadWorkload("Remote Sensing LR", 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.DSLAlgo(64)
	if err != nil {
		t.Fatal(err)
	}
	a.SetEpochs(6)
	if err := eng.RegisterUDF(a, 64); err != nil {
		t.Fatal(err)
	}
	// Warm the pool and the process (JIT-free, but page cache, branch
	// predictors, and the allocator all settle on the first run).
	if _, err := eng.Train(a.Name, d.Rel.Name); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := eng.Train(a.Name, d.Rel.Name); err != nil {
		t.Fatal(err)
	}
	return time.Since(start)
}

func TestObsOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement; skipped in -short mode")
	}
	// Interleave on/off measurements so slow drift (thermal, noisy
	// neighbors) hits both sides equally, then compare the minima:
	// scheduler noise only ever adds time, so the fastest round is the
	// least-contaminated estimate of each side's true cost. A systematic
	// regression shows up in every attempt, so a budget miss is only
	// fatal if it reproduces across independent measurement attempts.
	measure := func() float64 {
		const rounds = 7
		var on, off []float64
		for i := 0; i < rounds; i++ {
			on = append(on, trainWallOnce(t, false).Seconds())
			off = append(off, trainWallOnce(t, true).Seconds())
		}
		best := func(xs []float64) float64 {
			s := append([]float64(nil), xs...)
			sort.Float64s(s)
			return s[0]
		}
		mOn, mOff := best(on), best(off)
		t.Logf("obs on %.3fms, off %.3fms, overhead %.2f%%", mOn*1e3, mOff*1e3, 100*(mOn/mOff-1))
		return mOn/mOff - 1
	}
	const budget = 0.05
	var overhead float64
	for attempt := 0; attempt < 3; attempt++ {
		if overhead = measure(); overhead <= budget {
			return
		}
	}
	t.Fatalf("observability overhead %.2f%% exceeds the 5%% budget in 3 consecutive measurements",
		100*overhead)
}
