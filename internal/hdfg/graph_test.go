package hdfg

import (
	"testing"

	"dana/internal/dsl"
)

// linearAlgo builds the paper's §4.3 linear regression with the given
// merge coefficient (0 = no merge).
func linearAlgo(nFeat, mergeCoef int, lr float64) *dsl.Algo {
	a := dsl.NewAlgo("linearR")
	mo := a.Model(nFeat)
	in := a.Input(nFeat)
	out := a.Output()
	lrE := a.Meta(lr)
	s := dsl.Sigma(dsl.Mul(mo, in), 1)
	er := dsl.Sub(s, out)
	grad := dsl.Mul(er, in)
	up := dsl.Mul(lrE, grad)
	moUp := dsl.Sub(mo, up)
	if mergeCoef > 0 {
		a.MustMerge(grad, mergeCoef, "+")
	}
	a.SetModel(moUp)
	a.SetEpochs(1)
	return a
}

func TestTranslateLinear(t *testing.T) {
	g, err := Translate(linearAlgo(10, 8, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if g.MergeCoef != 8 {
		t.Errorf("MergeCoef = %d", g.MergeCoef)
	}
	if !g.Model.Shape.Equal(Shape{10}) {
		t.Errorf("model shape = %v", g.Model.Shape)
	}
	if !g.Updated.Shape.Equal(Shape{10}) {
		t.Errorf("updated shape = %v", g.Updated.Shape)
	}
	if g.Merge == nil || !g.Merge.Shape.Equal(Shape{10}) {
		t.Fatalf("merge = %v", g.Merge)
	}
	if g.TupleWidth() != 11 {
		t.Errorf("TupleWidth = %d", g.TupleWidth())
	}
	// The merge boundary: grad and upstream are per-tuple; up and mo_up
	// are post-merge (paper Figure 3b).
	var perTupleMuls, postMuls int
	for _, n := range g.Nodes {
		if n.Op == dsl.OpMul {
			if n.PostMerge {
				postMuls++
			} else {
				perTupleMuls++
			}
		}
	}
	if perTupleMuls != 2 { // mo*in and er*in
		t.Errorf("per-tuple muls = %d, want 2", perTupleMuls)
	}
	if postMuls != 1 { // lr*merge(grad)
		t.Errorf("post-merge muls = %d, want 1", postMuls)
	}
	if !g.Updated.PostMerge {
		t.Error("updated model should be post-merge")
	}
}

func TestMergeRewiring(t *testing.T) {
	g, err := Translate(linearAlgo(4, 8, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	// up = lr * grad must have been rewired to lr * merge(grad).
	up := g.Updated.Args[1] // mo - up
	if up.Op != dsl.OpMul {
		t.Fatalf("up = %v", up)
	}
	foundMerge := false
	for _, a := range up.Args {
		if a == g.Merge {
			foundMerge = true
		}
		if a == g.Merge.Args[0] {
			t.Error("up still consumes the raw grad")
		}
	}
	if !foundMerge {
		t.Error("up does not consume the merge node")
	}
}

func TestTranslateWithoutMerge(t *testing.T) {
	g, err := Translate(linearAlgo(4, 0, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if g.Merge != nil {
		t.Error("unexpected merge node")
	}
	for _, n := range g.Nodes {
		if n.PostMerge {
			t.Errorf("node %v marked post-merge without a merge function", n)
		}
	}
	if g.MergeCoef != 1 {
		t.Errorf("MergeCoef = %d", g.MergeCoef)
	}
}

func TestShapeInferencePaperContraction(t *testing.T) {
	// sigma(mo * in, 2) with mo=[5][10], in=[2][10] -> [5][2] (paper §4.4).
	a := dsl.NewAlgo("c")
	mo := a.Model(5, 10)
	in := a.Input(2, 10)
	m := dsl.Mul(mo, in)
	s := dsl.Sigma(m, 2)
	a.SetModel(mo) // placeholder root so validation passes
	a.SetEpochs(1)
	a.SetConvergence(dsl.Lt(dsl.Norm(dsl.Norm(s, 1), 1), a.Meta(1)))
	g, err := Translate(a)
	if err != nil {
		t.Fatal(err)
	}
	var mulN, sigN *Node
	for _, n := range g.Nodes {
		switch n.Op {
		case dsl.OpMul:
			mulN = n
		case dsl.OpSigma:
			sigN = n
		}
	}
	if !mulN.Shape.Equal(Shape{5, 2, 10}) {
		t.Errorf("mul shape = %v, want [5 2 10]", mulN.Shape)
	}
	if !sigN.Shape.Equal(Shape{5, 2}) {
		t.Errorf("sigma shape = %v, want [5 2]", sigN.Shape)
	}
}

func TestShapeInferenceBroadcast(t *testing.T) {
	cases := []struct {
		a, b, want Shape
		ok         bool
	}{
		{Shape{3}, Shape{3}, Shape{3}, true},
		{nil, Shape{4}, Shape{4}, true},
		{Shape{4}, nil, Shape{4}, true},
		{Shape{4}, Shape{3, 4}, Shape{3, 4}, true},
		{Shape{3, 4}, Shape{4}, Shape{3, 4}, true},
		{Shape{5, 10}, Shape{2, 10}, Shape{5, 2, 10}, true},
		{Shape{3}, Shape{4}, nil, false},
		{Shape{3, 4}, Shape{3, 5}, nil, false},
	}
	for _, c := range cases {
		got, err := broadcast(c.a, c.b)
		if c.ok && (err != nil || !got.Equal(c.want)) {
			t.Errorf("broadcast(%v,%v) = %v, %v; want %v", c.a, c.b, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("broadcast(%v,%v) should fail", c.a, c.b)
		}
	}
}

func TestShapeMismatchRejected(t *testing.T) {
	a := dsl.NewAlgo("bad")
	mo := a.Model(3)
	in := a.Input(4)
	a.Output()
	x := dsl.Mul(mo, in)
	a.SetModel(x)
	a.SetEpochs(1)
	if _, err := Translate(a); err == nil {
		t.Error("incompatible shapes should be rejected")
	}
}

func TestSetModelShapeChecked(t *testing.T) {
	a := dsl.NewAlgo("bad2")
	mo := a.Model(3)
	in := a.Input(3)
	a.Output()
	s := dsl.Sigma(dsl.Mul(mo, in), 1) // scalar
	a.SetModel(s)
	a.SetEpochs(1)
	if _, err := Translate(a); err == nil {
		t.Error("setModel with scalar for a vector model should be rejected")
	}
}

func TestConvergenceStaging(t *testing.T) {
	a := linearAlgo(4, 8, 0.1)
	// Reach into the builder to add convergence like the paper:
	// norm of the merged gradient below a threshold.
	var grad *dsl.Expr = a.MergeNode.Args[0]
	n := dsl.Norm(grad, 1)
	conv := dsl.Lt(n, a.Meta(0.01))
	a.SetConvergence(conv)
	g, err := Translate(a)
	if err != nil {
		t.Fatal(err)
	}
	if g.Convergence == nil {
		t.Fatal("no convergence node")
	}
	var normN *Node
	for _, nd := range g.Nodes {
		if nd.Op == dsl.OpNorm {
			normN = nd
		}
	}
	if normN == nil {
		t.Fatal("norm node missing")
	}
	if !normN.ConvOnly {
		t.Error("norm should be convergence-only")
	}
	if !normN.PostMerge {
		t.Error("norm consumes the merge, so it should be post-merge")
	}
	if g.Convergence.Shape.NDim() != 0 {
		t.Errorf("convergence shape = %v", g.Convergence.Shape)
	}
}

func TestGatherShapes(t *testing.T) {
	a := dsl.NewAlgo("lrmf")
	mo := a.Model(100, 10)
	u := a.Input() // user index
	v := a.Input() // item index
	r := a.Output()
	lr := a.Meta(0.05)
	ur := dsl.Gather(mo, u)
	vr := dsl.Gather(mo, v)
	pred := dsl.Sigma(dsl.Mul(ur, vr), 1)
	e := dsl.Sub(pred, r)
	uNew := dsl.Sub(ur, dsl.Mul(lr, dsl.Mul(e, vr)))
	vNew := dsl.Sub(vr, dsl.Mul(lr, dsl.Mul(e, ur)))
	a.SetModelRow(u, uNew)
	a.SetModelRow(v, vNew)
	a.SetEpochs(1)
	g, err := Translate(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.RowUpdates) != 2 {
		t.Fatalf("row updates = %d", len(g.RowUpdates))
	}
	for _, ru := range g.RowUpdates {
		if !ru.Val.Shape.Equal(Shape{10}) {
			t.Errorf("row update shape = %v", ru.Val.Shape)
		}
	}
	if g.TupleWidth() != 3 {
		t.Errorf("TupleWidth = %d", g.TupleWidth())
	}
}

func TestCountWork(t *testing.T) {
	g, err := Translate(linearAlgo(10, 8, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	w := g.CountWork()
	// Per-tuple: mul(10) + sigma(9) + sub(1) + mul(10) = 30.
	if w.PerTuple != 30 {
		t.Errorf("PerTuple = %d, want 30", w.PerTuple)
	}
	// Post-merge: merge(10) + mul(10) + sub(10) = 30.
	if w.PostMerge != 30 {
		t.Errorf("PostMerge = %d, want 30", w.PostMerge)
	}
	if w.PerEpoch != 0 {
		t.Errorf("PerEpoch = %d, want 0", w.PerEpoch)
	}
}

func TestTranslateDeterministic(t *testing.T) {
	// Node ordering must be stable run to run (no map iteration leaks).
	g1, err := Translate(linearAlgo(6, 4, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Translate(linearAlgo(6, 4, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if len(g1.Nodes) != len(g2.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(g1.Nodes), len(g2.Nodes))
	}
	for i := range g1.Nodes {
		if g1.Nodes[i].Op != g2.Nodes[i].Op || !g1.Nodes[i].Shape.Equal(g2.Nodes[i].Shape) {
			t.Fatalf("node %d differs: %v vs %v", i, g1.Nodes[i], g2.Nodes[i])
		}
	}
}
