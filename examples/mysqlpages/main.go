// MySQL/InnoDB page layout: §5.1.2 claims the Strider ISA "can target a
// range of RDBMS engines, such as PostgreSQL and MySQL (innoDB)". This
// example builds the same training data in both layouts — PostgreSQL's
// line-pointer array and InnoDB's linked record chain — generates the
// layout-specific Strider program for each, and shows both extract
// identical tuples. The InnoDB walker is pure pointer chasing, the
// access pattern the ISA's branch instructions exist for.
//
//	go run ./examples/mysqlpages
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dana/internal/storage"
	"dana/internal/strider"
)

func main() {
	const features = 6
	schema := storage.NumericSchema(features)
	rng := rand.New(rand.NewSource(42))

	// The same 200 tuples in both layouts.
	pg := storage.NewRelation("pg", schema, storage.PageSize8K)
	inno := storage.NewInnoRelation("inno", schema, storage.PageSize8K)
	for i := 0; i < 200; i++ {
		vals := make([]float64, features+1)
		for j := range vals {
			vals[j] = float64(float32(rng.NormFloat64()))
		}
		if _, err := pg.Insert(vals); err != nil {
			log.Fatal(err)
		}
		if err := inno.Insert(vals); err != nil {
			log.Fatal(err)
		}
	}

	// Layout-specific Strider programs out of the same ISA.
	pgProg, pgCfg, err := strider.Generate(strider.PostgresLayout(storage.PageSize8K))
	if err != nil {
		log.Fatal(err)
	}
	inProg, inCfg, err := strider.GenerateInnoDB(strider.InnoDBLayout(storage.PageSize8K, schema))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PostgreSQL walker (%d instructions):\n%s\n", len(pgProg), strider.Disassemble(pgProg))
	fmt.Printf("InnoDB chain walker (%d instructions):\n%s\n", len(inProg), strider.Disassemble(inProg))

	// Run both and compare the extracted byte streams.
	pgVM := strider.NewVM(pgProg, pgCfg)
	inVM := strider.NewVM(inProg, inCfg)
	var pgBytes, inBytes []byte
	var pgCycles, inCycles int64
	for i := 0; i < pg.NumPages(); i++ {
		page, _ := pg.Page(i)
		if err := pgVM.Run(page); err != nil {
			log.Fatal(err)
		}
		pgBytes = append(pgBytes, pgVM.Out()...)
		pgCycles += pgVM.Cycles()
	}
	for i := 0; i < inno.NumPages(); i++ {
		page, _ := inno.Page(i)
		if err := inVM.Run([]byte(page)); err != nil {
			log.Fatal(err)
		}
		inBytes = append(inBytes, inVM.Out()...)
		inCycles += inVM.Cycles()
	}
	same := len(pgBytes) == len(inBytes)
	if same {
		for i := range pgBytes {
			if pgBytes[i] != inBytes[i] {
				same = false
				break
			}
		}
	}
	fmt.Printf("PostgreSQL: %d pages, %d bytes extracted in %d cycles\n",
		pg.NumPages(), len(pgBytes), pgCycles)
	fmt.Printf("InnoDB:     %d pages, %d bytes extracted in %d cycles\n",
		inno.NumPages(), len(inBytes), inCycles)
	if same {
		fmt.Println("extracted tuple streams are identical across layouts")
	} else {
		fmt.Println("MISMATCH between layouts!")
	}
}
