package engine

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// lowerAndCompare runs the same tuple stream through the macro Machine
// (1 thread, batch 1) and the lowered MicroMachine, comparing models.
func lowerAndCompare(t *testing.T, p *Program, cfg Config, tupleWidth, n int, seed int64, initModel []float32) {
	t.Helper()
	cfg.Threads = 1
	mac, err := NewMachine(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := Lower(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mic := NewMicroMachine(mp)
	if initModel != nil {
		if err := mac.SetModel(initModel); err != nil {
			t.Fatal(err)
		}
		if err := mic.SetModel(initModel); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		tuple := make([]float32, tupleWidth)
		for j := range tuple {
			tuple[j] = float32(rng.NormFloat64())
		}
		if err := mac.RunBatch([][]float32{tuple}); err != nil {
			t.Fatal(err)
		}
		if err := mic.RunTuple(tuple); err != nil {
			t.Fatal(err)
		}
	}
	a, b := mac.Model(), mic.Model()
	for i := range a {
		diff := math.Abs(float64(a[i] - b[i]))
		scale := math.Max(1, math.Abs(float64(a[i])))
		if diff/scale > 1e-4 {
			t.Fatalf("model[%d]: macro %v vs micro %v", i, a[i], b[i])
		}
	}
}

// linearProg builds the hand-written linear SGD program of engine_test.
func linearProgWithMerge() *Program {
	p := handProg()
	// Add a merge path: merged gradient at [16,20) -> same slots reused.
	p.MergeSrc = Slot{16, 4}
	p.MergeDst = Slot{16, 4}
	p.MergeOp = AAdd
	return p
}

func TestLowerHandProgramMatchesMacro(t *testing.T) {
	lowerAndCompare(t, handProg(), Config{Threads: 1, ACsPerThread: 2, AUsPerAC: 8, ClockHz: 150e6}, 5, 60, 1, []float32{0.5, -0.25, 1, 2})
}

func TestLowerSingleACConfig(t *testing.T) {
	lowerAndCompare(t, handProg(), Config{Threads: 1, ACsPerThread: 1, AUsPerAC: 8, ClockHz: 150e6}, 5, 40, 2, nil)
}

func TestLowerMergeProgram(t *testing.T) {
	lowerAndCompare(t, linearProgWithMerge(), Config{Threads: 1, ACsPerThread: 2, AUsPerAC: 8, ClockHz: 150e6}, 5, 40, 3, nil)
}

func TestLowerGatherScatterProgram(t *testing.T) {
	// Model: 4 rows x 2 cols; tuple = (row, delta): row' = row + delta.
	p := &Program{
		Slots:     16,
		ModelSlot: Slot{0, 8},
		InputSlot: Slot{8, 2},
		PerTuple: []Instr{
			{Kind: KGather, Dst: Slot{10, 2}, A: Slot{8, 1}, RowLen: 2},
			{Kind: KEW, Op: AAdd, Dst: Slot{12, 2}, A: Slot{10, 2}, B: Slot{9, 1}},
		},
		RowUpdates: []Instr{
			{Kind: KScatter, A: Slot{12, 2}, B: Slot{8, 1}, RowLen: 2},
		},
	}
	cfg := Config{Threads: 1, ACsPerThread: 1, AUsPerAC: 8, ClockHz: 150e6}
	mac, err := NewMachine(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := Lower(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mic := NewMicroMachine(mp)
	init := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	if err := mac.SetModel(init); err != nil {
		t.Fatal(err)
	}
	if err := mic.SetModel(init); err != nil {
		t.Fatal(err)
	}
	tuples := [][]float32{{2, 0.5}, {0, -1}, {3, 2}, {2, 1}}
	for _, tup := range tuples {
		if err := mac.RunBatch([][]float32{tup}); err != nil {
			t.Fatal(err)
		}
		if err := mic.RunTuple(tup); err != nil {
			t.Fatal(err)
		}
	}
	a, b := mac.Model(), mic.Model()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("model[%d]: macro %v vs micro %v", i, a[i], b[i])
		}
	}
	// And the expected arithmetic: row 2 got +0.5 then +1.
	if a[4] != init[4]+1.5 || a[5] != init[5]+1.5 {
		t.Errorf("row 2 = %v,%v", a[4], a[5])
	}
}

func TestLowerStridedReduce(t *testing.T) {
	// Column sums of a 3x4 matrix (strided groups exercise the
	// group-serial lowering).
	p := &Program{
		Slots:     20,
		ModelSlot: Slot{0, 12},
		InputSlot: Slot{12, 1},
		PerTuple: []Instr{
			{Kind: KReduce, Op: AAdd, Dst: Slot{13, 4}, A: Slot{0, 12},
				GroupSize: 3, GStride: 1, EStride: 4},
		},
	}
	cfg := Config{Threads: 1, ACsPerThread: 2, AUsPerAC: 8, ClockHz: 150e6}
	mp, err := Lower(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mic := NewMicroMachine(mp)
	model := make([]float32, 12)
	for i := range model {
		model[i] = float32(i + 1)
	}
	if err := mic.SetModel(model); err != nil {
		t.Fatal(err)
	}
	if err := mic.RunTuple([]float32{0}); err != nil {
		t.Fatal(err)
	}
	// Column j sum = (j+1) + (j+5) + (j+9).
	dst := mp.MapSlot(Slot{13, 4})
	for j := 0; j < 4; j++ {
		want := float32(3*j + 15)
		got := mic.scratch[dst.Base+j]
		if got != want {
			t.Errorf("col %d sum = %v, want %v", j, got, want)
		}
	}
}

func TestLowerMaskSanity(t *testing.T) {
	p := handProg()
	cfg := Config{Threads: 1, ACsPerThread: 2, AUsPerAC: 8, ClockHz: 150e6}
	mp, err := Lower(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, mi := range mp.PerTuple {
		if mi.Kind != MCompute {
			continue
		}
		count++
		if mi.Mask == 0 {
			t.Errorf("empty mask in %v", mi)
		}
		if mi.AC < 0 || mi.AC >= cfg.ACsPerThread {
			t.Errorf("AC out of range in %v", mi)
		}
	}
	if count == 0 {
		t.Fatal("no compute micro ops")
	}
	pt, _, _ := mp.Count()
	if pt < count {
		t.Errorf("Count() = %d < %d", pt, count)
	}
}

func TestLowerListingStrings(t *testing.T) {
	p := handProg()
	mp, err := Lower(p, Config{Threads: 1, ACsPerThread: 2, AUsPerAC: 8, ClockHz: 150e6})
	if err != nil {
		t.Fatal(err)
	}
	sawBus, sawSIMD := false, false
	for _, mi := range mp.PerTuple {
		s := mi.String()
		if s == "?" || s == "" {
			t.Errorf("bad String for %+v", mi)
		}
		if mi.Kind == MBusLoad {
			sawBus = true
		}
		if mi.Kind == MCompute && strings.Contains(s, "mask=") {
			sawSIMD = true
		}
	}
	if !sawBus || !sawSIMD {
		t.Errorf("listing lacks bus loads (%v) or SIMD steps (%v)", sawBus, sawSIMD)
	}
}

func TestMicroMachineValidation(t *testing.T) {
	p := handProg()
	mp, err := Lower(p, Config{Threads: 1, ACsPerThread: 2, AUsPerAC: 8, ClockHz: 150e6})
	if err != nil {
		t.Fatal(err)
	}
	mic := NewMicroMachine(mp)
	if err := mic.SetModel([]float32{1}); err == nil {
		t.Error("wrong model size accepted")
	}
	if err := mic.LoadTuple([]float32{1}); err == nil {
		t.Error("wrong tuple width accepted")
	}
}

// Property: lowering any of a family of random EW programs preserves
// semantics against direct evaluation.
func TestLowerRandomEWPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(24)
		// input: two vectors of length n; output vector of length n.
		p := &Program{
			Slots:     8 + 3*n,
			ModelSlot: Slot{0, 4},
			InputSlot: Slot{8, 2 * n},
			PerTuple: []Instr{
				{Kind: KEW, Op: AMul, Dst: Slot{8 + 2*n, n}, A: Slot{8, n}, B: Slot{8 + n, n}},
			},
		}
		cfg := Config{Threads: 1, ACsPerThread: 1 + rng.Intn(3), AUsPerAC: 8, ClockHz: 150e6}
		mp, err := Lower(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mic := NewMicroMachine(mp)
		tuple := make([]float32, 2*n)
		for j := range tuple {
			tuple[j] = float32(rng.NormFloat64())
		}
		if err := mic.RunTuple(tuple); err != nil {
			t.Fatal(err)
		}
		dst := mp.MapSlot(Slot{8 + 2*n, n})
		for i := 0; i < n; i++ {
			want := tuple[i] * tuple[n+i]
			if got := mic.scratch[dst.Base+i]; got != want {
				t.Fatalf("trial %d elem %d: %v != %v (cfg %+v)", trial, i, got, want, cfg)
			}
		}
	}
}
