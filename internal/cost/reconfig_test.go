package cost

import (
	"math"
	"testing"
)

func TestReconfigSec(t *testing.T) {
	p := Default()
	if p.ReconfigureSec <= 0 || p.ConfigReuseSec <= 0 {
		t.Fatalf("default reconfig params must be positive: %v / %v",
			p.ReconfigureSec, p.ConfigReuseSec)
	}
	if p.ConfigReuseSec >= p.ReconfigureSec {
		t.Fatalf("reuse handshake (%v) must be cheaper than a full reconfiguration (%v)",
			p.ConfigReuseSec, p.ReconfigureSec)
	}
	if got := ReconfigSec(p, true); got != p.ConfigReuseSec {
		t.Errorf("ReconfigSec(reuse) = %v, want %v", got, p.ConfigReuseSec)
	}
	if got := ReconfigSec(p, false); got != p.ReconfigureSec {
		t.Errorf("ReconfigSec(switch) = %v, want %v", got, p.ReconfigureSec)
	}
}

func TestAmortizedReconfigSec(t *testing.T) {
	p := Default()
	if got := AmortizedReconfigSec(p, 0); got != p.ReconfigureSec {
		t.Errorf("no upcoming demand: %v, want the full charge %v", got, p.ReconfigureSec)
	}
	if got := AmortizedReconfigSec(p, -5); got != p.ReconfigureSec {
		t.Errorf("negative demand must clamp to the full charge, got %v", got)
	}
	prev := math.Inf(1)
	for _, n := range []int{0, 1, 3, 10, 100} {
		got := AmortizedReconfigSec(p, n)
		if got >= prev {
			t.Fatalf("amortization must strictly decrease with demand: f(%d) = %v >= %v", n, got, prev)
		}
		if want := p.ReconfigureSec / float64(1+n); got != want {
			t.Fatalf("AmortizedReconfigSec(%d) = %v, want %v", n, got, want)
		}
		prev = got
	}
}

func TestServerServiceSec(t *testing.T) {
	p := Default()
	if got := ServerServiceSec(p.SetupSec+1.5, p); got != 1.5 {
		t.Errorf("ServerServiceSec = %v, want 1.5", got)
	}
	if got := ServerServiceSec(p.SetupSec/2, p); got != 0 {
		t.Errorf("service below the setup charge must clamp to 0, got %v", got)
	}
}

func TestScoreServiceSec(t *testing.T) {
	p := Default()
	w := Workload{
		Tuples: 10000, Columns: 55, Epochs: 8, DAnAEpochs: 3,
		DatasetBytes: 64 << 20, Pages: 2048,
		EpochCycles: 5_000_000, StriderPageCycles: 900, Striders: 4,
	}
	got := ScoreServiceSec(w, p)
	if got <= 0 {
		t.Fatalf("score service must be positive, got %v", got)
	}
	// One data pass, independent of the training epoch budget.
	w2 := w
	w2.Epochs, w2.DAnAEpochs = 100, 0
	if again := ScoreServiceSec(w2, p); again != got {
		t.Errorf("score pricing must ignore the epoch budget: %v vs %v", again, got)
	}
	// And it must be cheaper than the full multi-epoch training estimate.
	train := DAnA(w, p, true).TotalSec
	if got >= train {
		t.Errorf("one scoring pass (%v) should undercut the %d-epoch train (%v)",
			got, w.DAnAEpochs, train)
	}
}
