package cost

// Multi-channel link model (ROADMAP item 3). The single PCIe/AXI link
// of the paper's platform generalizes to N independent memory channels
// — the "High Bandwidth Memory on FPGAs" direction — each feeding its
// own group of Striders. Pages interleave round-robin across channels
// (page pn streams on channel pn mod N, the same policy the host
// executor uses to shard its Strider groups), and channels run
// concurrently, so an epoch's transfer time is the *maximum* over
// channels of (per-channel handshake + that channel's page bytes /
// per-channel bandwidth).
//
// Charging order is documented and serial: channels are charged in
// index order 0..N-1, each channel's pages in page order; the epoch
// takes the worst channel. The degenerate 1-channel model is, by
// construction, the exact legacy expression DatasetBytes /
// (PCIeBytesPerSec * BandwidthScale) — bit-identical, not just equal
// in the limit — so every pre-channel experiment reproduces.

// ChannelModel describes the accelerator's data link as N independent
// channels. The zero value is the legacy single link: one channel at
// PCIeBytesPerSec with no handshake.
type ChannelModel struct {
	// Channels is the number of independent channels (<= 1 models the
	// single legacy link).
	Channels int
	// ChannelBytesPerSec is the bandwidth of ONE channel before the
	// Figure-14 BandwidthScale multiplier (0 = Params.PCIeBytesPerSec).
	// Aggregate link bandwidth is Channels × per-channel — the invariant
	// AggregateBandwidth asserts.
	ChannelBytesPerSec float64
	// HandshakeSec is the per-epoch, per-channel DMA setup latency
	// (descriptor ring, doorbell). Charged once per channel per epoch,
	// inside the max — a channel's stream cannot start before its
	// handshake.
	HandshakeSec float64
}

// channels returns the effective channel count (>= 1).
func (l ChannelModel) channels() int {
	if l.Channels < 1 {
		return 1
	}
	return l.Channels
}

// ChannelBandwidth returns the effective bandwidth of one channel:
// the configured per-channel rate (or the legacy PCIe rate) scaled by
// the Figure-14 BandwidthScale multiplier.
func ChannelBandwidth(p Params) float64 {
	bw := p.Link.ChannelBytesPerSec
	if bw == 0 {
		bw = p.PCIeBytesPerSec
	}
	return bw * p.BandwidthScale
}

// AggregateBandwidth is the total link bandwidth: channels × per-channel.
func AggregateBandwidth(p Params) float64 {
	return float64(p.Link.channels()) * ChannelBandwidth(p)
}

// ChannelPages returns how many of n round-robin-interleaved pages land
// on channel ch of c channels (pages pn with pn ≡ ch mod c).
func ChannelPages(n, c, ch int) int {
	if c < 1 || ch < 0 || ch >= c || n <= 0 {
		return 0
	}
	return (n + c - 1 - ch) / c
}

// linkBytes returns the bytes one epoch streams over the accelerator
// link: the heap relation, or — when the workload declares a weave
// precision — the exact rewoven prefix FixedBytes + k × BitBytes
// (storage.WeaveFixedPageBytes / WeaveBitPageBytes summed by
// weaving.RelationGeometry). The precision-sweep identity tests compare
// this figure with == against the geometry.
func linkBytes(w Workload) int64 {
	if w.WeaveBits > 0 {
		return w.WeaveFixedBytes + int64(w.WeaveBits)*w.WeaveBitBytes
	}
	return w.DatasetBytes
}

// danaTransferSec charges the page-granularity stream of the DAnA paths
// for the whole run: epochs × the per-epoch max-over-channels transfer.
// The arithmetic is structured so one channel reproduces the legacy
// scalar expression epochs*DatasetBytes/(PCIeBytesPerSec*BandwidthScale)
// bit-for-bit (linkBytes is DatasetBytes whenever WeaveBits is 0).
func danaTransferSec(w Workload, p Params) float64 {
	c := p.Link.channels()
	bw := ChannelBandwidth(p)
	bytes := linkBytes(w)
	if c == 1 {
		return float64(w.Epochs)*float64(bytes)/bw +
			float64(w.Epochs)*p.Link.HandshakeSec
	}
	pages := w.Pages
	if pages <= 0 {
		pages = c // no page count: assume an even byte split
	}
	var worst float64
	for ch := 0; ch < c; ch++ {
		// The channel's byte share is proportional to its page share
		// under round-robin interleaving.
		share := float64(bytes) * (float64(ChannelPages(pages, c, ch)) / float64(pages))
		t := float64(w.Epochs)*share/bw + float64(w.Epochs)*p.Link.HandshakeSec
		if t > worst {
			worst = t
		}
	}
	return worst
}

// TransferSec is the per-epoch transfer time of a dataset over the
// configured link (the runtime's simulated-seconds pipeline term and
// the danabench channel sweep both charge through here).
func TransferSec(w Workload, p Params) float64 {
	we := w
	we.Epochs = 1
	we.DAnAEpochs = 0
	return danaTransferSec(we, p)
}

// tupleTransferSec charges the tuple-granularity ablation: each tuple
// ships as its own DMA; tuples interleave round-robin across channels,
// so the epoch takes the channel with the most tuples. One channel
// reproduces the legacy epochs*Tuples*perTuple expression bit-for-bit.
func tupleTransferSec(w Workload, p Params) float64 {
	c := p.Link.channels()
	bw := ChannelBandwidth(p)
	perTuple := TupleHandshakeSec + float64(w.DatasetBytes)/float64(max1(w.Tuples))/bw
	tuples := w.Tuples
	if c > 1 {
		tuples = (tuples + c - 1) / c // worst channel: ceil(T/c)
	}
	return float64(w.Epochs) * float64(tuples) * perTuple
}
