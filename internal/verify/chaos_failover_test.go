package verify_test

// Cross-backend failover chaos scenarios: PR-4's quarantine/CPU-fallback
// path is now the generic backend-failover policy (dispatcher picks the
// cheapest admissible Fallback backend), and these scenarios pin the
// behavior across the Backend seam:
//
//   - an accelerator fault storm degrades the streaming pipeline and the
//     generic failover lands on the CPU backend, with both the generic
//     runtime.failovers counter and the historical runtime.cpu_fallbacks
//     counter charged, and zero page pins leaked;
//   - the same policy serves the non-streaming accelerated path (TABLA
//     override hit by cluster faults at the epoch boundary);
//   - non-accelerated backends (cpu, sharded) are immune to accelerator
//     fault schedules — explicit overrides run clean under a storm;
//   - the DisableCPUFallback knob flips failover off: the fault surfaces
//     typed and no failover is recorded (the load-bearing mutation for
//     this suite's green runs).

import (
	"errors"
	"testing"

	"dana/internal/fault"
	"dana/internal/obs"
	"dana/internal/runtime"
)

// stormSched is a persistent Strider trap storm: every (vm, page) walk
// faults, so the whole pool quarantines and the streaming pipeline
// degrades.
func stormSched(o *runtime.Options) {
	var rates [fault.NumPoints]float64
	rates[fault.StriderTrap] = 1.0
	o.Faults = fault.New(fault.Config{Seed: 61, Rates: rates, TransientAttempts: -1})
}

// clusterSched hard-fails the modeled cluster at every epoch boundary —
// the fault point that reaches accelerated backends with no Striders.
func clusterSched(o *runtime.Options) {
	var rates [fault.NumPoints]float64
	rates[fault.ClusterDown] = 1.0
	o.Faults = fault.New(fault.Config{Seed: 62, Rates: rates, TransientAttempts: -1})
}

// TestFailoverStreamingToCPU: the accelerator pipeline faults mid-train
// and the generic failover finishes the budget on the CPU backend.
func TestFailoverStreamingToCPU(t *testing.T) {
	wl := chaosWorkloads[0]
	s, udf, table := chaosSystem(t, wl, 8<<10, stormSched)
	res, err := s.Train(udf, table)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "accelerator" {
		t.Errorf("res.Backend = %q, want accelerator", res.Backend)
	}
	if !res.Degraded {
		t.Fatal("persistent trap storm should degrade the run")
	}
	if res.FailoverBackend != "cpu" {
		t.Errorf("res.FailoverBackend = %q, want cpu", res.FailoverBackend)
	}
	if got := s.Obs().Get(obs.RuntimeFailovers); got != 1 {
		t.Errorf("failovers = %d, want 1", got)
	}
	if got := s.Obs().Get(obs.RuntimeCPUFallbacks); got != 1 {
		t.Errorf("cpu_fallbacks = %d, want 1 (historical counter must track CPU-target failovers)", got)
	}
	if s.Pool().PinnedCount() != 0 {
		t.Error("failover run leaked page pins")
	}
	assertWithinTol(t, "failover model", res.Model, chaosBaseline(t, wl, 8<<10), wl.tol)
}

// TestFailoverTablaToCPU: the same generic policy serves the
// non-streaming accelerated path — a TABLA override hit by cluster
// faults degrades and lands on the CPU backend.
func TestFailoverTablaToCPU(t *testing.T) {
	wl := chaosWorkloads[0]
	s, udf, table := chaosSystem(t, wl, 8<<10, clusterSched,
		func(o *runtime.Options) { o.Backend = "tabla" })
	res, err := s.Train(udf, table)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "tabla" {
		t.Errorf("res.Backend = %q, want tabla", res.Backend)
	}
	if !res.Degraded || res.FailoverBackend != "cpu" {
		t.Fatalf("degraded=%v failover=%q, want degraded run failing over to cpu", res.Degraded, res.FailoverBackend)
	}
	if got := s.Obs().Get(obs.RuntimeFailovers); got != 1 {
		t.Errorf("failovers = %d, want 1", got)
	}
	if s.Pool().PinnedCount() != 0 {
		t.Error("failover run leaked page pins")
	}
	assertWithinTol(t, "tabla failover model", res.Model, chaosBaseline(t, wl, 8<<10), wl.tol)
}

// TestFailoverNonAcceleratedImmune: accelerator fault schedules must not
// reach backends that model no accelerator hardware — explicit cpu and
// sharded overrides run clean under the same storms.
func TestFailoverNonAcceleratedImmune(t *testing.T) {
	wl := chaosWorkloads[0]
	for _, name := range []string{"cpu", "sharded"} {
		for schedName, sched := range map[string]func(*runtime.Options){
			"trap-storm": stormSched, "cluster-down": clusterSched,
		} {
			s, udf, table := chaosSystem(t, wl, 8<<10, sched,
				func(o *runtime.Options) { o.Backend = name })
			res, err := s.Train(udf, table)
			if err != nil {
				t.Fatalf("%s under %s: %v", name, schedName, err)
			}
			if res.Backend != name {
				t.Errorf("%s under %s: res.Backend = %q", name, schedName, res.Backend)
			}
			if res.Degraded {
				t.Errorf("%s under %s: non-accelerated backend degraded", name, schedName)
			}
			if got := s.Obs().Get(obs.RuntimeFailovers); got != 0 {
				t.Errorf("%s under %s: failovers = %d, want 0", name, schedName, got)
			}
			if s.Pool().PinnedCount() != 0 {
				t.Errorf("%s under %s: leaked page pins", name, schedName)
			}
		}
	}
}

// TestFailoverMetaDisableLoadBearing is the mutation meta-test for this
// suite: turning the failover knob off flips both scenarios from
// degraded-recovery to typed failure with zero failovers recorded —
// proving the green runs above exercise the generic failover path, not
// some silent recovery.
func TestFailoverMetaDisableLoadBearing(t *testing.T) {
	wl := chaosWorkloads[0]

	s, udf, table := chaosSystem(t, wl, 8<<10, stormSched,
		func(o *runtime.Options) { o.DisableCPUFallback = true })
	if _, err := s.Train(udf, table); !errors.Is(err, fault.ErrWorkerQuarantined) {
		t.Fatalf("streaming storm without failover: got %v, want ErrWorkerQuarantined", err)
	}
	if got := s.Obs().Get(obs.RuntimeFailovers); got != 0 {
		t.Errorf("failovers = %d after disabled failover, want 0", got)
	}
	if s.Pool().PinnedCount() != 0 {
		t.Error("failed run leaked page pins")
	}

	s2, udf2, table2 := chaosSystem(t, wl, 8<<10, clusterSched,
		func(o *runtime.Options) { o.Backend = "tabla"; o.DisableCPUFallback = true })
	if _, err := s2.Train(udf2, table2); !errors.Is(err, fault.ErrClusterDown) {
		t.Fatalf("tabla cluster-down without failover: got %v, want ErrClusterDown", err)
	}
	if got := s2.Obs().Get(obs.RuntimeFailovers); got != 0 {
		t.Errorf("failovers = %d after disabled failover, want 0", got)
	}
}
