package cost

import (
	"math"
	"testing"
)

func sampleWorkload() Workload {
	return Workload{
		Tuples:                  581102,
		Columns:                 55,
		Epochs:                  3,
		DatasetBytes:            154 << 20,
		Pages:                   4924,
		FlopsPerTuple:           224,
		ModelParams:             54,
		EpochCycles:             5e6,
		SingleThreadEpochCycles: 6e7,
		StriderPageCycles:       4500,
		Striders:                32,
	}
}

func TestPGWarmVsCold(t *testing.T) {
	w := sampleWorkload()
	p := Default()
	warm := MADlibPostgres(w, p, true)
	cold := MADlibPostgres(w, p, false)
	if warm.IOSec != 0 {
		t.Errorf("warm IO = %v for a dataset smaller than the pool", warm.IOSec)
	}
	if cold.IOSec <= 0 {
		t.Error("cold run should pay I/O")
	}
	if cold.TotalSec <= warm.TotalSec {
		t.Error("cold must be slower than warm")
	}
}

func TestPGOutOfMemoryDatasetPaysIOEveryEpoch(t *testing.T) {
	w := sampleWorkload()
	w.DatasetBytes = 32 << 30 // 32 GB > 8 GB pool
	w.Epochs = 10
	p := Default()
	warm := MADlibPostgres(w, p, true)
	// At least (32-8) GB must be re-read per epoch.
	minIO := float64(w.Epochs) * float64(24<<30) / p.DiskBytesPerSec
	if warm.IOSec < minIO*0.99 {
		t.Errorf("IO = %v, want >= %v", warm.IOSec, minIO)
	}
}

func TestGreenplumPeaksAtEight(t *testing.T) {
	p := Default()
	p4 := greenplumParallelism(p, 4)
	p8 := greenplumParallelism(p, 8)
	p16 := greenplumParallelism(p, 16)
	if !(p8 > p4 && p8 > p16) {
		t.Errorf("parallelism 4/8/16 = %v/%v/%v, want a peak at 8", p4, p8, p16)
	}
	if greenplumParallelism(p, 1) != 1 {
		t.Error("1 segment must be 1x")
	}
	// Figure 13 magnitude: ~2.1x at 8 segments.
	if p8 < 1.7 || p8 > 2.6 {
		t.Errorf("8-segment parallelism = %v, want ~2.1", p8)
	}
}

func TestDAnAFasterThanPG(t *testing.T) {
	w := sampleWorkload()
	p := Default()
	pg := MADlibPostgres(w, p, true)
	dana := DAnA(w, p, true)
	if dana.TotalSec >= pg.TotalSec {
		t.Errorf("DAnA %v >= PG %v", dana.TotalSec, pg.TotalSec)
	}
}

func TestStriderAblationOrdering(t *testing.T) {
	w := sampleWorkload()
	p := Default()
	with := DAnA(w, p, true)
	without := DAnANoStrider(w, p, true)
	if with.TotalSec >= without.TotalSec {
		t.Errorf("with striders %v >= without %v", with.TotalSec, without.TotalSec)
	}
	tabla := TABLA(w, p, true)
	if tabla.TotalSec < without.TotalSec {
		t.Error("TABLA (single-threaded) should not beat multi-threaded no-strider DAnA")
	}
}

func TestBandwidthScalingMonotone(t *testing.T) {
	w := sampleWorkload()
	w.DatasetBytes = 4 << 30 // transfer-bound
	p := Default()
	prev := math.Inf(1)
	for _, sc := range []float64{0.25, 0.5, 1, 2, 4} {
		pp := p
		pp.BandwidthScale = sc
		cur := DAnAPipelineSec(w, pp)
		if cur > prev {
			t.Errorf("pipeline time increased at scale %v", sc)
		}
		prev = cur
	}
}

// TestBandwidthDoesNotHelpComputeBound asserts the channel-model
// invariants on a compute-bound workload: neither the Figure-14 scale
// nor the channel count moves the pipeline time once the engine is the
// bottleneck; aggregate bandwidth is channels × per-channel; and the
// degenerate 1-channel configuration is bit-identical to the legacy
// scalar BandwidthScale numbers.
func TestBandwidthDoesNotHelpComputeBound(t *testing.T) {
	w := sampleWorkload()
	w.EpochCycles = 1e12 // dominate everything
	p := Default()
	base := DAnAPipelineSec(w, p)
	p.BandwidthScale = 4
	if DAnAPipelineSec(w, p) != base {
		t.Error("compute-bound workload should ignore bandwidth")
	}
	for _, ch := range []int{1, 4, 8, 32} {
		pc := p
		pc.Link.Channels = ch
		if got := DAnAPipelineSec(w, pc); got != base {
			t.Errorf("compute-bound pipeline moved with %d channels: %v != %v", ch, got, base)
		}
		// Aggregate bandwidth = channels × per-channel, exactly.
		if got, want := AggregateBandwidth(pc), float64(ch)*ChannelBandwidth(pc); got != want {
			t.Errorf("aggregate bandwidth %v != %d × per-channel %v", got, ch, want/float64(ch))
		}
	}
	// Degenerate 1-channel config: every DAnA-path transfer charge must
	// reproduce the legacy scalar formula bit-for-bit, for any scale.
	for _, sc := range []float64{0.25, 0.5, 1, 2, 4} {
		pp := Default()
		pp.BandwidthScale = sc
		legacy := float64(w.Epochs) * float64(w.DatasetBytes) / (pp.PCIeBytesPerSec * pp.BandwidthScale)
		if got := danaTransferSec(w, pp); got != legacy {
			t.Errorf("scale %v: 1-channel transfer %v != legacy %v (not bit-identical)", sc, got, legacy)
		}
		pp.Link = ChannelModel{Channels: 1}
		if got := danaTransferSec(w, pp); got != legacy {
			t.Errorf("scale %v: explicit 1-channel transfer %v != legacy %v", sc, got, legacy)
		}
	}
}

func TestDAnAEpochOverride(t *testing.T) {
	w := sampleWorkload()
	p := Default()
	base := DAnA(w, p, true).TotalSec
	w.DAnAEpochs = 1
	fast := DAnA(w, p, true).TotalSec
	if fast >= base {
		t.Errorf("epoch override did not reduce time: %v >= %v", fast, base)
	}
	// But PG ignores the override.
	if MADlibPostgres(w, p, true).TotalSec != MADlibPostgres(sampleWorkload(), p, true).TotalSec {
		t.Error("PG must not see the DAnA epoch override")
	}
}

func TestExternalLibraryPhases(t *testing.T) {
	w := sampleWorkload()
	p := Default()
	lb := ExternalLibrary(Liblinear, "logistic", w, p)
	if lb.ExportSec <= 0 || lb.TransformSec <= 0 || lb.ComputeSec <= 0 {
		t.Errorf("breakdown = %+v", lb)
	}
	// Export dominates transform (Figure 15a).
	if lb.ExportSec < 10*lb.TransformSec {
		t.Errorf("export %v should dwarf transform %v", lb.ExportSec, lb.TransformSec)
	}
	// Liblinear has no linear regression.
	lin := ExternalLibrary(Liblinear, "linear", w, p)
	if !math.IsNaN(lin.ComputeSec) {
		t.Error("Liblinear linear regression should be NaN")
	}
	if !math.IsNaN(ExternalLibrary(Liblinear, "linear", w, p).TotalSec) {
		t.Error("NaN compute should propagate to total")
	}
}

func TestSVMLibrariesSlowerThanMADlib(t *testing.T) {
	w := sampleWorkload()
	w.FlopsPerTuple = 6 * 54
	p := Default()
	pg := MADlibPostgres(w, p, true)
	lb := ExternalLibrary(Liblinear, "svm", w, p)
	dw := ExternalLibrary(DimmWitted, "svm", w, p)
	// §7.3: for SVM the external solvers lose to in-database IGD even on
	// compute time once the penalty applies at this scale.
	if lb.TotalSec < pg.TotalSec || dw.TotalSec < pg.TotalSec {
		t.Errorf("SVM libs should lose end-to-end: pg=%v lib=%v dw=%v", pg.TotalSec, lb.TotalSec, dw.TotalSec)
	}
}

func TestSpeedupHelper(t *testing.T) {
	a := Breakdown{TotalSec: 10}
	b := Breakdown{TotalSec: 2}
	if Speedup(a, b) != 5 {
		t.Errorf("Speedup = %v", Speedup(a, b))
	}
}

func TestDiskBreakEven(t *testing.T) {
	// Crossover check: as the dataset grows past the pool, cold and warm
	// converge (everything is I/O).
	p := Default()
	w := sampleWorkload()
	w.DatasetBytes = 100 << 30
	w.Epochs = 5
	warm := MADlibPostgres(w, p, true)
	cold := MADlibPostgres(w, p, false)
	if (cold.TotalSec-warm.TotalSec)/cold.TotalSec > 0.05 {
		t.Errorf("out-of-memory warm %v vs cold %v should nearly match", warm.TotalSec, cold.TotalSec)
	}
}
