package verify

import (
	"fmt"
	"testing"

	"dana/internal/algos"
)

// BaseSeed anchors the deterministic differential suite. Every subtest
// derives its generator from BaseSeed+i and logs the seed, so a failure
// reproduces with:
//
//	go test -run 'TestDifferentialSuite/seed=0x<seed>' ./internal/verify
const BaseSeed = 0xDA7A

// NumInstances is the suite size (the acceptance floor is 100).
const NumInstances = 120

var kinds = []algos.Kind{algos.KindLinear, algos.KindLogistic, algos.KindSVM, algos.KindLRMF}

// specFor draws a random training spec. Hyper-parameters are kept in
// ranges where float32/float64 divergence stays well under the engine
// tolerance (no knife-edge SVM margins, bounded feature scale).
func specFor(g *Gen) GoldenSpec {
	sp := GoldenSpec{
		Kind:      kinds[g.Intn(len(kinds))],
		LR:        0.01 + 0.04*float64(g.Intn(5)),
		Epochs:    1 + g.Intn(3),
		MergeCoef: []int{1, 1, 2, 4, 8}[g.Intn(5)],
	}
	switch sp.Kind {
	case algos.KindLRMF:
		sp.Users = 2 + g.Intn(6)
		sp.Items = 2 + g.Intn(6)
		sp.Rank = 1 + g.Intn(4)
		sp.MergeCoef = 1 // row updates imply single-threaded (no merge)
	case algos.KindSVM:
		sp.NFeat = 2 + g.Intn(14)
		sp.Lambda = 0.01
	default:
		sp.NFeat = 2 + g.Intn(14)
	}
	return sp
}

// trainingData draws a well-scaled dataset and init model for the spec
// (see TrainingTuples / InitModelFor, which external crosschecks reuse).
func trainingData(g *Gen, sp GoldenSpec, n int) ([][]float64, []float64) {
	return TrainingTuples(g, sp, n), InitModelFor(g, sp)
}

// TestDifferentialSuite runs NumInstances random (schema, relation,
// algorithm) instances through all three oracles from a fixed seed.
func TestDifferentialSuite(t *testing.T) {
	for i := 0; i < NumInstances; i++ {
		seed := int64(BaseSeed + i)
		t.Run(fmt.Sprintf("seed=0x%X", seed), func(t *testing.T) {
			t.Parallel()
			t.Logf("reproduce with NewGen(0x%X)", seed)
			g := NewGen(seed)
			pageSize := g.PageSize()

			// Oracle A: page, relation, and InnoDB round-trips.
			psc, err := g.PageScenario(pageSize)
			if err != nil {
				t.Fatal(err)
			}
			if err := psc.CheckStorageOracle(); err != nil {
				t.Error(err)
			}
			rsc, err := g.RelationScenario(pageSize, 80)
			if err != nil {
				t.Fatal(err)
			}
			if err := rsc.CheckRelationOracle(); err != nil {
				t.Error(err)
			}
			isc, err := g.InnoScenario(pageSize, 60)
			if err != nil {
				t.Fatal(err)
			}
			if err := isc.CheckInnoOracle(); err != nil {
				t.Error(err)
			}

			// Oracle B: Strider walkers vs direct decode vs ground truth.
			ssc, err := g.StriderScenario(pageSize, 3, 40)
			if err != nil {
				t.Fatal(err)
			}
			if err := ssc.CheckStriderOracle(); err != nil {
				t.Error(err)
			}
			iss, err := g.InnoStriderScenario(pageSize, 40)
			if err != nil {
				t.Fatal(err)
			}
			if err := iss.CheckInnoStriderOracle(); err != nil {
				t.Error(err)
			}

			// Oracle C: training equivalence. The engine leg (compile +
			// design-space exploration + simulate) runs on a third of
			// the instances to keep the suite inside its time budget;
			// the golden/interp/ml legs run everywhere.
			sp := specFor(g)
			tuples, init := trainingData(g, sp, 20+g.Intn(40))
			opt := EquivalenceOpt{SkipEngine: i%3 != 0}
			if err := CheckTrainingEquivalence(sp, init, tuples, opt); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestGoldenMatchesInterpAllKinds pins the bit-identity claim per kind,
// including merge batching, on fixed seeds (fast, always on).
func TestGoldenMatchesInterpAllKinds(t *testing.T) {
	cases := []GoldenSpec{
		{Kind: algos.KindLinear, NFeat: 4, LR: 0.05, Epochs: 3, MergeCoef: 1},
		{Kind: algos.KindLinear, NFeat: 6, LR: 0.05, Epochs: 2, MergeCoef: 4},
		{Kind: algos.KindLogistic, NFeat: 5, LR: 0.1, Epochs: 3, MergeCoef: 1},
		{Kind: algos.KindLogistic, NFeat: 3, LR: 0.1, Epochs: 2, MergeCoef: 3},
		{Kind: algos.KindSVM, NFeat: 4, LR: 0.05, Lambda: 0.01, Epochs: 3, MergeCoef: 1},
		{Kind: algos.KindSVM, NFeat: 8, LR: 0.05, Lambda: 0.01, Epochs: 2, MergeCoef: 2},
		{Kind: algos.KindLRMF, Users: 4, Items: 3, Rank: 2, LR: 0.05, Epochs: 2, MergeCoef: 1},
	}
	for ci, sp := range cases {
		sp := sp
		t.Run(fmt.Sprintf("%s/mc=%d", sp.Kind, sp.MergeCoef), func(t *testing.T) {
			g := NewGen(int64(1000 + ci))
			tuples, init := trainingData(g, sp, 30)
			if err := CheckTrainingEquivalence(sp, init, tuples, EquivalenceOpt{SkipEngine: true}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
