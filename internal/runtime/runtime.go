// Package runtime is DAnA's integration layer (paper Figure 2): it
// wires the SQL front end, catalog, and buffer pool to the translator,
// compiler, hardware generator, access engine, and execution engine,
// and executes `SELECT * FROM dana.<udf>('table')` end to end — pages
// stream from the buffer pool through Striders into the multi-threaded
// engine, producing a trained model and cycle-accurate statistics.
package runtime

import (
	"errors"
	"fmt"
	"time"

	"dana/internal/accessengine"
	"dana/internal/bufpool"
	"dana/internal/catalog"
	"dana/internal/compiler"
	"dana/internal/cost"
	"dana/internal/datagen"
	"dana/internal/dsl"
	"dana/internal/engine"
	"dana/internal/fault"
	"dana/internal/hwgen"
	"dana/internal/ml"
	"dana/internal/obs"
	"dana/internal/sql"
	"dana/internal/storage"
	"dana/internal/strider"
	"dana/internal/verify"
)

// Options configure a System.
type Options struct {
	PageSize  int
	PoolBytes int64
	Disk      bufpool.DiskModel
	FPGA      hwgen.FPGA
	Cost      cost.Params
	// MaxEpochs caps functional training regardless of the UDF's epoch
	// budget (0 = use the UDF's).
	MaxEpochs int

	// Workers sets the host goroutines that run Strider VMs during
	// extraction (0 = GOMAXPROCS, capped at the design's Strider count;
	// 1 = serial). Parallelism affects wall-clock time only: modeled
	// cycle counts are charged in page order and stay bit-identical.
	Workers int
	// Channels models the accelerator link as N independent memory
	// channels (0/1 = the single legacy link, capped at MaxChannels).
	// Pages interleave round-robin — page pn streams on channel pn mod
	// N, the policy internal/cost charges — and the executor shards its
	// extraction workers into per-channel Strider groups along the same
	// boundaries, each channel backed by its own record arena. Like
	// Workers, the channel count changes host wall-clock only: modeled
	// cycles, simulated seconds, and trained models are bit-identical
	// for any value (the per-channel obs counters split by channel, but
	// their totals are invariant). The *modeled* transfer time follows
	// Cost.Link, which is configured independently.
	Channels int
	// PipelineDepth bounds the extracted-but-unconsumed page batches per
	// worker (0 = default), bounding memory for large tables.
	PipelineDepth int
	// NoExtractCache disables the cross-epoch extracted-record cache, so
	// every epoch re-walks the heap pages through the Striders.
	NoExtractCache bool

	// Faults attaches a seeded fault-injection schedule threaded through
	// the buffer pool (read errors, latency spikes, page corruption
	// caught by checksums), the access engine (Strider traps), and the
	// executor (worker stalls, cluster faults). Nil disables injection
	// entirely: every hook degrades to a nil-check and modeled results
	// are bit-identical to a build without the fault framework.
	Faults *fault.Injector
	// EpochTimeout bounds each epoch's wall-clock time (0 = none).
	// Expiry surfaces as a typed fault.ErrEpochTimeout, which triggers
	// the CPU fallback unless DisableCPUFallback is set.
	EpochTimeout time.Duration
	// MaxPageRetries bounds same-Strider re-walk attempts after a VM
	// trap before the Strider is quarantined (0 = default 3, negative =
	// no retries).
	MaxPageRetries int
	// MaxReadRetries is forwarded to bufpool.Pool.MaxReadRetries
	// (0 = pool default, negative = no retries).
	MaxReadRetries int
	// DisableCPUFallback turns off graceful degradation: accelerator
	// faults surface as typed errors instead of completing the train on
	// the golden float64 CPU trainer.
	DisableCPUFallback bool
	// VerifyChecksums forces per-page checksum verification on every
	// buffer-pool read even without an attached fault schedule (reads
	// always verify when Faults is non-nil).
	VerifyChecksums bool

	// Obs supplies the observability registry every subsystem charges
	// (nil = the System creates its own enabled registry). Observation
	// is strictly additive: modeled cycles, simulated seconds, and
	// trained models are bit-identical with obs on, off, or shared.
	Obs *obs.Registry
	// DisableObs runs the system dark (obs.Noop): every counter site
	// degrades to a nil-check. Overrides Obs.
	DisableObs bool
}

// DefaultOptions mirrors the paper's default setup: 32 KB pages, 8 GB
// buffer pool, VU9P FPGA. The pool is capped at 256 MB of frames for
// in-process runs; the cost model still uses the full 8 GB figure.
func DefaultOptions() Options {
	p := cost.Default()
	return Options{
		PageSize:  storage.PageSize32K,
		PoolBytes: 256 << 20,
		Disk:      bufpool.DefaultDisk(),
		FPGA:      hwgen.VU9P(),
		Cost:      p,
	}
}

// MaxChannels caps Options.Channels (per-channel instruments are
// resolved eagerly at New, so the series count must be bounded).
const MaxChannels = 32

// System is a DAnA-enhanced database instance.
type System struct {
	Opts Options
	DB   *sql.DB

	cache recordCache // cross-epoch extracted-record cache

	channels int // effective channel count (Opts.Channels clamped)

	obs *obs.Registry // observability registry (obs.Noop when disabled)
	// Cached runtime-layer instrument handles (nil-safe no-ops when dark).
	obsEpochs       *obs.Counter
	obsEpochsCached *obs.Counter
	obsCacheHits    *obs.Counter
	obsCacheMisses  *obs.Counter
	obsWorkerBusy   *obs.Counter
	obsEpochWall    *obs.Counter
	obsTrainWall    *obs.Counter
	obsTrainRuns    *obs.Counter
	obsEpochHist    *obs.Histogram
	// Fault-recovery instruments.
	obsPageRetries  *obs.Counter
	obsQuarantines  *obs.Counter
	obsEpochRetries *obs.Counter
	obsEpochTimeout *obs.Counter
	obsCPUFallbacks *obs.Counter
	// Static-verification instruments.
	obsVerifyRuns     *obs.Counter
	obsVerifyWarnings *obs.Counter
	obsVerifyRejects  *obs.Counter
	// Per-channel stream instruments (one handle per modeled channel,
	// resolved at New like every other instrument; charged by the
	// coordinator in page order alongside the Collector).
	obsChanBytes []*obs.Counter
	obsChanBusy  []*obs.Counter
}

// New creates the system and installs it as the SQL executor's UDF
// runner.
func New(opts Options) *System {
	if opts.PageSize == 0 {
		opts = DefaultOptions()
	}
	s := &System{
		Opts: opts,
		DB:   sql.NewDB(opts.PageSize, opts.PoolBytes, opts.Disk),
	}
	s.DB.Runner = s
	reg := opts.Obs
	if opts.DisableObs {
		reg = obs.Noop
	} else if reg == nil {
		reg = obs.New()
	}
	s.obs = reg
	s.DB.Pool.SetObs(reg)
	s.obsEpochs = reg.Counter(obs.RuntimeEpochs)
	s.obsEpochsCached = reg.Counter(obs.RuntimeEpochCached)
	s.obsCacheHits = reg.Counter(obs.RuntimeCacheHits)
	s.obsCacheMisses = reg.Counter(obs.RuntimeCacheMisses)
	s.obsWorkerBusy = reg.Counter(obs.RuntimeWorkerBusyNs)
	s.obsEpochWall = reg.Counter(obs.RuntimeEpochWallNs)
	s.obsTrainWall = reg.Counter(obs.RuntimeTrainWallNs)
	s.obsTrainRuns = reg.Counter(obs.RuntimeTrainRuns)
	s.obsEpochHist = reg.Hist(obs.HistEpochWallNs)
	s.obsPageRetries = reg.Counter(obs.RuntimePageRetries)
	s.obsQuarantines = reg.Counter(obs.RuntimeQuarantines)
	s.obsEpochRetries = reg.Counter(obs.RuntimeEpochRetries)
	s.obsEpochTimeout = reg.Counter(obs.RuntimeEpochTimeout)
	s.obsCPUFallbacks = reg.Counter(obs.RuntimeCPUFallbacks)
	s.obsVerifyRuns = reg.Counter(obs.StriderVerifyRuns)
	s.obsVerifyWarnings = reg.Counter(obs.StriderVerifyWarnings)
	s.obsVerifyRejects = reg.Counter(obs.StriderVerifyRejects)
	s.channels = opts.Channels
	if s.channels < 1 {
		s.channels = 1
	}
	if s.channels > MaxChannels {
		s.channels = MaxChannels
	}
	s.obsChanBytes = make([]*obs.Counter, s.channels)
	s.obsChanBusy = make([]*obs.Counter, s.channels)
	for i := range s.obsChanBytes {
		s.obsChanBytes[i] = reg.Counter(obs.ChannelBytesStreamed(i))
		s.obsChanBusy[i] = reg.Counter(obs.ChannelBusyCycles(i))
	}
	reg.Counter(obs.ChannelCount).Add(int64(s.channels))
	s.DB.Pool.MaxReadRetries = opts.MaxReadRetries
	s.DB.Pool.VerifyChecksums = opts.VerifyChecksums
	if opts.Faults != nil {
		s.DB.Pool.SetFaults(opts.Faults)
	}
	return s
}

// Obs returns the system's observability registry (obs.Noop when the
// system runs dark). Snapshot it for the JSON export, or read counters
// programmatically via Get.
func (s *System) Obs() *obs.Registry { return s.obs }

// Catalog returns the system catalog.
func (s *System) Catalog() *catalog.Catalog { return s.DB.Cat }

// Pool returns the buffer pool.
func (s *System) Pool() *bufpool.Pool { return s.DB.Pool }

// WarmTable pre-loads a table into the buffer pool (the paper's
// warm-cache setting) and resets the pool counters.
func (s *System) WarmTable(table string) error {
	if _, err := s.DB.Cat.Table(table); err != nil {
		return err
	}
	return s.DB.Pool.Warm(table)
}

// DropCaches empties the buffer pool and the extracted-record cache
// (the cold-cache setting): the next epoch re-reads every page from the
// simulated disk. Pool invalidations that bypass this method (e.g. DROP
// TABLE inside the SQL layer) still invalidate the record cache via the
// pool's invalidation counter.
func (s *System) DropCaches() error {
	if err := s.DB.Pool.Invalidate(); err != nil {
		return err
	}
	s.cache.clear()
	return nil
}

// Deploy attaches a generated dataset's relation to the catalog and
// buffer pool.
func (s *System) Deploy(d *datagen.Dataset) error {
	if err := s.DB.Cat.AttachTable(d.Rel); err != nil {
		return err
	}
	return s.DB.Pool.AttachRelation(d.Rel)
}

// Register translates the UDF, compiles it, runs hardware generation
// for the system FPGA, generates the Strider program, and stores the
// accelerator in the catalog. numTuples scores design points.
func (s *System) Register(a *dsl.Algo, mergeCoef, numTuples int) (*catalog.Accelerator, error) {
	udf, err := s.DB.Cat.RegisterUDF(a)
	if err != nil {
		return nil, err
	}
	return s.buildAccelerator(udf, mergeCoef, numTuples)
}

func (s *System) buildAccelerator(udf *catalog.UDF, mergeCoef, numTuples int) (*catalog.Accelerator, error) {
	if mergeCoef < 1 {
		mergeCoef = udf.Graph.MergeCoef
	}
	prog, err := compiler.Compile(udf.Graph)
	if err != nil {
		return nil, err
	}
	design, err := hwgen.Generate(prog, s.Opts.FPGA, hwgen.Params{
		PageSize:  s.Opts.PageSize,
		MergeCoef: mergeCoef,
		NumTuples: numTuples,
	})
	if err != nil {
		return nil, err
	}
	sprog, scfg, err := strider.Generate(strider.PostgresLayout(s.Opts.PageSize))
	if err != nil {
		return nil, err
	}
	// Verify once per program, here at build time: every later dispatch
	// (each epoch, each page) reuses this admission decision. A definite
	// trap is a compiler bug, rejected before it can quarantine workers.
	rep := strider.Verify(sprog, scfg, strider.VerifyOptions{PageSize: s.Opts.PageSize})
	s.obsVerifyRuns.Inc()
	nWarn := int64(len(rep.Warnings()))
	s.obsVerifyWarnings.Add(nWarn)
	if err := rep.Err(false); err != nil {
		s.obsVerifyRejects.Inc()
		return nil, fmt.Errorf("runtime: refusing to dispatch unverified Strider program for %s: %w", udf.Name, err)
	}
	sched := compiler.ScheduleProgram(prog, design.Engine)
	acc := &catalog.Accelerator{
		UDFName:         udf.Name,
		Program:         prog,
		StriderProg:     sprog,
		StriderCfg:      scfg,
		Design:          design,
		OperationMap:    compiler.OperationMap(prog.PerTuple, sched),
		ScheduledCycles: sched.MakespanCycles,
	}
	if err := s.DB.Cat.StoreAccelerator(acc); err != nil {
		return nil, err
	}
	return acc, nil
}

// TrainResult reports one functional accelerated training run.
type TrainResult struct {
	UDF    string
	Table  string
	Model  []float32
	Epochs int

	Engine engine.Stats
	Access accessengine.Stats
	Pool   bufpool.Stats
	Design hwgen.Design

	// SimulatedSeconds is the modeled accelerator time for the run
	// (pipeline of engine/strider/transfer at the FPGA clock) plus I/O.
	SimulatedSeconds float64

	// Degraded reports that the accelerator faulted mid-train and the
	// remaining epochs ran on the golden float64 CPU trainer
	// (graceful degradation). DegradedAtEpoch is the zero-based epoch
	// the accelerator last attempted; epochs before it trained on the
	// accelerator, epochs from it onward on the CPU.
	Degraded        bool
	DegradedAtEpoch int
}

// Train runs the DAnA pipeline for a registered UDF over a table:
// buffer-pool pages -> Striders -> execution engine, epoch by epoch
// with convergence checks.
func (s *System) Train(udfName, table string) (*TrainResult, error) {
	udf, err := s.DB.Cat.UDF(udfName)
	if err != nil {
		return nil, err
	}
	rel, err := s.DB.Cat.Table(table)
	if err != nil {
		return nil, err
	}
	acc, ok := s.DB.Cat.Accelerator(udfName)
	if !ok {
		if acc, err = s.buildAccelerator(udf, 0, rel.NumTuples()); err != nil {
			return nil, err
		}
	}
	if got, want := rel.Schema.NumCols(), udf.Graph.TupleWidth(); got != want {
		return nil, fmt.Errorf("runtime: table %q has %d columns, UDF %q consumes %d", table, got, udfName, want)
	}

	nStriders := acc.Design.NumStriders
	if nStriders < 1 {
		nStriders = 1
	}
	if nStriders > 16 {
		nStriders = 16 // in-process VM instances; cycle model unchanged
	}
	ae, err := accessengine.New(strider.PostgresLayout(s.Opts.PageSize), rel.Schema, nStriders)
	if err != nil {
		return nil, err
	}
	ae.SetObs(s.obs)
	ae.SetFaults(s.Opts.Faults)
	machine, err := engine.NewMachine(acc.Program, acc.Design.Engine)
	if err != nil {
		return nil, err
	}
	machine.SetObs(s.obs)
	defer machine.Close() // releases batch fan-out helpers, if any
	// LRMF-style factor models cannot start at zero (a stationary
	// point); seed them with the same small uniform initialization the
	// reference implementation uses.
	if len(udf.Graph.RowUpdates) > 0 {
		init := ml.InitModel(ml.LRMF{
			Users: udf.Graph.Model.Shape[0], Items: 0, Rank: udf.Graph.Model.Shape[1],
		}, 1)
		f32 := make([]float32, len(init))
		for i, v := range init {
			f32[i] = float32(v)
		}
		if err := machine.SetModel(f32); err != nil {
			return nil, err
		}
	}

	epochs := udf.Graph.Epochs
	if epochs < 1 {
		epochs = 1
	}
	if s.Opts.MaxEpochs > 0 && epochs > s.Opts.MaxEpochs {
		epochs = s.Opts.MaxEpochs
	}
	res := &TrainResult{UDF: udfName, Table: table, Design: acc.Design}
	runner := s.newEpochRunner(ae, rel, machine, udf.Graph.MergeCoef)
	trainStart := time.Now()
	s.obsTrainRuns.Inc()
	s.obs.Trace(obs.EvTrainStart, int64(epochs), int64(rel.NumPages()))
	var degradeErr error
	for e := 0; e < epochs; e++ {
		err := s.Opts.Faults.ClusterFault(e)
		if err == nil {
			err = runner.runEpochRecover(e)
		}
		if err != nil {
			if errors.Is(err, fault.ErrEpochTimeout) {
				s.obsEpochTimeout.Inc()
				s.obs.Trace(obs.EvEpochTimeout, int64(e), int64(s.Opts.EpochTimeout))
			}
			if s.Opts.DisableCPUFallback || !fault.IsAcceleratorFault(err) {
				return nil, err
			}
			// Graceful degradation: the accelerator is gone but storage
			// is intact, so the remaining epochs run on the golden
			// float64 CPU trainer from the epoch-start model state.
			degradeErr = err
			res.Degraded = true
			res.DegradedAtEpoch = e
			break
		}
		res.Epochs++
		done, err := machine.Converged()
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	if res.Degraded {
		if err := s.trainOnCPU(res, udf, rel, machine, epochs); err != nil {
			// Both errors wrap: the caller must be able to errors.Is against
			// the accelerator fault that triggered degradation AND the
			// fallback failure.
			return nil, fmt.Errorf("runtime: CPU fallback after accelerator fault (%w) failed: %w", degradeErr, err)
		}
	}
	s.obsTrainWall.Add(time.Since(trainStart).Nanoseconds())
	s.obs.Trace(obs.EvTrainDone, int64(res.Epochs), machine.Stats().Cycles)
	if !res.Degraded {
		res.Model = machine.Model()
	}
	res.Engine = machine.Stats()
	res.Access = ae.Stats()
	res.Pool = s.DB.Pool.Stats()
	// Pipeline time: engine and striders overlap; link transfer too.
	// Transfer is charged through the channel model (max-over-channels
	// of the round-robin page shares); the run's page stream — cached
	// replays included — is one interleaved sequence. The zero-value
	// Cost.Link reproduces the legacy scalar PCIe×scale charge exactly.
	clock := s.Opts.FPGA.ClockHz
	engineSec := float64(res.Engine.Cycles) / clock
	striderSec := float64(res.Access.Cycles) / clock
	cp := s.Opts.Cost
	cp.BandwidthScale = nz(cp.BandwidthScale)
	transferSec := cost.TransferSec(cost.Workload{
		DatasetBytes: res.Access.Pages * int64(s.Opts.PageSize),
		Pages:        int(res.Access.Pages),
	}, cp)
	pipe := engineSec
	if striderSec > pipe {
		pipe = striderSec
	}
	if transferSec > pipe {
		pipe = transferSec
	}
	res.SimulatedSeconds = pipe + res.Pool.IOSeconds + s.Opts.Cost.SetupSec
	return res, nil
}

// trainOnCPU completes a degraded training run on the golden float64
// CPU trainer (internal/verify): it picks up the machine's epoch-start
// model, re-reads the tuples from the heap (narrowed through float32,
// matching the Strider datapath), and runs the remaining epoch budget.
// The downgrade is surfaced via the runtime.cpu_fallbacks counter and a
// train.cpu_fallback trace event — never a panic, never a silent wrong
// model.
func (s *System) trainOnCPU(res *TrainResult, udf *catalog.UDF, rel *storage.Relation, m *engine.Machine, totalEpochs int) error {
	s.obsCPUFallbacks.Inc()
	s.obs.Trace(obs.EvCPUFallback, int64(res.DegradedAtEpoch), int64(totalEpochs-res.DegradedAtEpoch))
	tr, err := verify.NewCPUTrainer(udf.Graph, m.Model())
	if err != nil {
		return err
	}
	var tuples [][]float64
	err = rel.Scan(func(_ storage.TID, vals []float64) error {
		row := make([]float64, len(vals))
		for i, v := range vals {
			row[i] = float64(float32(v))
		}
		tuples = append(tuples, row)
		return nil
	})
	if err != nil {
		return err
	}
	ran, err := tr.Train(tuples, totalEpochs-res.DegradedAtEpoch)
	if err != nil {
		return err
	}
	res.Epochs += ran
	res.Model = tr.Model32()
	return nil
}

func nz(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// RunUDF implements sql.UDFRunner: training results surface as a result
// set of (index, value) model parameters, capped at 4096 rows.
func (s *System) RunUDF(udfName, table string) (*sql.Result, error) {
	res, err := s.Train(udfName, table)
	if err != nil {
		return nil, err
	}
	out := &sql.Result{Cols: []string{"param", "value"}}
	limitRows := len(res.Model)
	if limitRows > 4096 {
		limitRows = 4096
	}
	for i := 0; i < limitRows; i++ {
		out.Rows = append(out.Rows, []float64{float64(i), float64(res.Model[i])})
	}
	out.Msg = fmt.Sprintf("DAnA trained %s on %s: %d epochs, %d tuples, %d cycles",
		udfName, table, res.Epochs, res.Engine.Tuples, res.Engine.Cycles)
	return out, nil
}
