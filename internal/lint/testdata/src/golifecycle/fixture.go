// Package server exercises the golifecycle analyzer (which scopes by
// package NAME, so this fixture declares package server): every go
// statement needs a completion signal inside the goroutine and a join
// on that signal covering all CFG paths from spawn to return, and the
// module lock-order graph must stay acyclic.
package server

import "sync"

type worker struct {
	wg sync.WaitGroup
}

func (w *worker) run() {}

func unjoined(n int) {
	for i := 0; i < n; i++ {
		go func() { // want `go statement spawns a goroutine that signals no completion`
			_ = i * 2
		}()
	}
}

func wgJoined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func joinMissedOnPath(early bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `go statement has no bounded join on some path`
		defer wg.Done()
	}()
	if early {
		return
	}
	wg.Wait()
}

func chanJoined() int {
	ch := make(chan int)
	go func() {
		ch <- 42
	}()
	return <-ch
}

// looseJoined spawns a method value: the goroutine body is out of view,
// so any join operation in the spawner satisfies the loose rule.
func looseJoined(w *worker) {
	w.wg.Add(1)
	go w.run()
	w.wg.Wait()
}

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func lockAB(p *pair) {
	p.a.Lock()
	p.b.Lock() // want `lock server.pair.b acquired while holding server.pair.a`
	p.b.Unlock()
	p.a.Unlock()
}

func lockBA(p *pair) {
	p.b.Lock()
	p.a.Lock() // want `lock server.pair.a acquired while holding server.pair.b`
	p.a.Unlock()
	p.b.Unlock()
}

type ordered struct {
	outer sync.Mutex
	inner sync.Mutex
}

func lockOrdered1(o *ordered) {
	o.outer.Lock()
	o.inner.Lock()
	o.inner.Unlock()
	o.outer.Unlock()
}

func lockOrdered2(o *ordered) {
	o.outer.Lock()
	defer o.outer.Unlock()
	o.inner.Lock()
	defer o.inner.Unlock()
}

func reLock(p *pair) {
	p.a.Lock()
	p.a.Lock() // want `lock server.pair.a acquired while already held \(self-cycle`
	p.a.Unlock()
	p.a.Unlock()
}
