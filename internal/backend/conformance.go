package backend

// Backend conformance harness. Every registered backend is run through
// seeded scenarios (the PR-2 differential generator) and held to the
// trichotomy its Capabilities declare:
//
//   - bit-identical where promised: DeterministicCounters backends must
//     produce bit-identical modeled counters AND model bits across
//     repeat runs — including across different Stream delivery forms
//     (page-order batch stream vs materialized rows), the invariant the
//     runtime's record cache replays depend on; BitExactModel backends
//     must match their declared reference semantics bit for bit;
//   - toleranced elsewhere: float32-datapath backends must land within
//     Capabilities.ModelTolerance of the reference (Oracle-C scaled
//     comparison), for the trained model and for Score predictions;
//   - typed errors for unsupported jobs: out-of-capability jobs fail
//     with ErrUnsupported, pre-Configure use with ErrNotConfigured —
//     never untyped, never silently wrong.
//
// The harness lives in non-test code so the conformance tests and the
// mutation meta-tests (which prove each check can fail) share it.

import (
	"errors"
	"fmt"
	"math"

	"dana/internal/algos"
	"dana/internal/compiler"
	"dana/internal/cost"
	"dana/internal/hdfg"
	"dana/internal/hwgen"
	"dana/internal/obs"
	"dana/internal/verify"
)

// Scenario is one seeded conformance instance: a golden spec, its
// initial model, and a float32-quantized training set (both widths name
// the same values).
type Scenario struct {
	Seed   int64
	Spec   verify.GoldenSpec
	Init   []float64
	Tuples [][]float64
	Rows32 [][]float32
	// Bits is the weave read precision the scenario requests (0 = full
	// width). GenScenario leaves it 0; the precision-sweep tests set it
	// explicitly.
	Bits int
}

// GenScenario draws a scenario from one seed. Same seed, same scenario.
func GenScenario(seed int64) Scenario {
	g := verify.NewGen(seed)
	kinds := []algos.Kind{algos.KindLinear, algos.KindLogistic, algos.KindSVM, algos.KindLRMF}
	sp := verify.GoldenSpec{
		Kind:      kinds[g.Intn(len(kinds))],
		LR:        []float64{0.1, 0.05, 0.025}[g.Intn(3)],
		MergeCoef: []int{1, 1, 4, 8}[g.Intn(4)],
		Epochs:    2 + g.Intn(3),
	}
	if sp.Kind == algos.KindLRMF {
		sp.Users, sp.Items, sp.Rank = 4+g.Intn(5), 3+g.Intn(4), 2+g.Intn(3)
		sp.MergeCoef = 1 // row-sparse updates cannot merge-batch
	} else {
		sp.NFeat = 3 + g.Intn(8)
	}
	if sp.Kind == algos.KindSVM {
		sp.Lambda = 0.01
	}
	n := 24 + g.Intn(40)
	sc := Scenario{
		Seed:   seed,
		Spec:   sp,
		Tuples: verify.TrainingTuples(g, sp, n),
		Init:   verify.InitModelFor(g, sp),
	}
	sc.Rows32 = make([][]float32, len(sc.Tuples))
	for i, t := range sc.Tuples {
		sc.Rows32[i] = narrow32(t)
	}
	return sc
}

// ConformanceEnv is the fixed environment the conformance suite runs
// backends under.
func ConformanceEnv() Env {
	return Env{Obs: obs.Noop, Cost: cost.Default(), FPGA: hwgen.VU9P(), Workers: 1, Segments: 4}
}

// BuildProgram compiles the scenario's algorithm down to a backend
// Program: DSL -> hDFG -> engine program -> hardware design point.
func BuildProgram(sc Scenario, env Env) (Program, error) {
	const pageSize = 8192
	a, err := algos.Build(sc.Spec.Kind, sc.Spec.Topology(), sc.Spec.Hyper())
	if err != nil {
		return Program{}, err
	}
	graph, err := hdfg.Translate(a)
	if err != nil {
		return Program{}, err
	}
	prog, err := compiler.Compile(graph)
	if err != nil {
		return Program{}, err
	}
	design, err := hwgen.Generate(prog, env.FPGA, hwgen.Params{
		PageSize: pageSize, MergeCoef: max1(sc.Spec.MergeCoef), NumTuples: len(sc.Tuples),
	})
	if err != nil {
		return Program{}, err
	}
	striders := design.NumStriders
	if striders < 1 {
		striders = 1
	}
	if striders > 16 {
		striders = 16
	}
	return Program{
		Graph:     graph,
		Engine:    prog,
		EngineCfg: design.Engine,
		Striders:  striders,
		MergeCoef: sc.Spec.MergeCoef,
		PageSize:  pageSize,
		Tuples:    len(sc.Tuples),
		Bits:      sc.Bits,
		Init:      append([]float64(nil), sc.Init...),
	}, nil
}

// JobFor classifies the scenario's program into a dispatch job.
func JobFor(sc Scenario, p Program) Job {
	pages := len(sc.Tuples)/8 + 1
	class := Classify(p.Graph)
	return Job{
		Class:         class,
		Bits:          sc.Bits,
		Tuples:        len(sc.Tuples),
		Columns:       sc.Spec.TupleWidth(),
		Pages:         pages,
		PageSize:      p.PageSize,
		DatasetBytes:  int64(pages) * int64(p.PageSize),
		Epochs:        max1(sc.Spec.Epochs),
		MergeCoef:     max1(sc.Spec.MergeCoef),
		ModelParams:   sc.Spec.ModelSize(),
		FlopsPerTuple: FlopsPerTuple(class, p.Graph),
		Engine:        p.Engine,
		Design:        hwgen.Design{Engine: p.EngineCfg, NumStriders: p.Striders},
		Warm:          true,
	}
}

// Violation is one conformance failure, tagged with the check that
// caught it so the mutation meta-tests can assert which check fired.
type Violation struct {
	Check string
	Err   error
}

func (v Violation) String() string { return fmt.Sprintf("[%s] %v", v.Check, v.Err) }

// Conformance check names.
const (
	CheckCapabilities  = "capabilities"
	CheckUnsupported   = "unsupported-typed"
	CheckNotConfigured = "not-configured"
	CheckTrain         = "train"
	CheckDeterminism   = "counter-determinism"
	CheckScore         = "score"
)

// classUnknown is a workload class no backend supports; every backend
// must reject it typed.
const classUnknown Class = "conformance-unknown"

// primaryStream is the delivery form matching the backend's
// capabilities: the page-order batch stream for streaming backends,
// materialized rows (both widths) otherwise.
func primaryStream(caps Capabilities, sc Scenario) *Stream {
	if caps.Streaming {
		return &Stream{Batches: batchFeed(sc.Rows32, 7)}
	}
	return &Stream{Rows32: sc.Rows32, Rows64: sc.Tuples}
}

// alternateStream is a different legal delivery of the same epoch; a
// deterministic backend must not be able to tell them apart.
func alternateStream(caps Capabilities, sc Scenario) *Stream {
	if caps.Streaming {
		return &Stream{Rows32: sc.Rows32}
	}
	return &Stream{Rows64: sc.Tuples}
}

// batchFeed emits rows in fixed-size batches, modeling page-granular
// extraction (the size is deliberately coprime with common merge
// coefficients to cross batch boundaries).
func batchFeed(rows [][]float32, per int) func(emit func([][]float32) error) error {
	return func(emit func([][]float32) error) error {
		for at := 0; at < len(rows); at += per {
			end := at + per
			if end > len(rows) {
				end = len(rows)
			}
			if err := emit(rows[at:end]); err != nil {
				return err
			}
		}
		return nil
	}
}

// reference resolves the registration's declared reference semantics
// (default: the golden trainer).
func reference(reg Registration, env Env, sc Scenario) ([]float64, error) {
	if reg.Reference != nil {
		return reg.Reference(env, sc)
	}
	return GoldenReference(sc)
}

// GoldenReference trains the scenario on the golden float64 trainer —
// the default reference semantics a backend is compared against.
func GoldenReference(sc Scenario) ([]float64, error) {
	model := append([]float64(nil), sc.Init...)
	if err := sc.Spec.Train(model, sc.Tuples); err != nil {
		return nil, err
	}
	return model, nil
}

// train configures a fresh instance and runs exactly the scenario's
// epoch budget through the given stream (convergence policy belongs to
// the integration layer, and the reference trainer runs uncapped).
func train(be Backend, p Program, sc Scenario, st *Stream) error {
	if err := be.Configure(p); err != nil {
		return err
	}
	for e := 0; e < max1(sc.Spec.Epochs); e++ {
		if err := be.RunEpoch(st); err != nil {
			return fmt.Errorf("epoch %d: %w", e, err)
		}
	}
	return nil
}

// Check runs the full conformance suite for one registration on one
// scenario and returns every violation found (empty = conformant).
func Check(reg Registration, env Env, sc Scenario) []Violation {
	var vs []Violation
	add := func(check string, format string, args ...interface{}) {
		vs = append(vs, Violation{Check: check, Err: fmt.Errorf(format, args...)})
	}

	be := reg.New(env)
	caps := be.Capabilities()

	// Capability declaration sanity: a backend must say what it is.
	if caps.Name == "" || caps.Name != reg.Name {
		add(CheckCapabilities, "capability name %q does not match registration %q", caps.Name, reg.Name)
	}
	if len(caps.Classes) == 0 {
		add(CheckCapabilities, "backend %q declares no workload classes", reg.Name)
	}
	if caps.Precision != PrecisionFloat32 && caps.Precision != PrecisionFloat64 {
		add(CheckCapabilities, "backend %q declares no precision", reg.Name)
	}
	if !caps.BitExactModel && !(caps.ModelTolerance > 0) {
		add(CheckCapabilities, "backend %q promises neither bit-exact models nor a tolerance", reg.Name)
	}

	p, err := BuildProgram(sc, env)
	if err != nil {
		add(CheckTrain, "building scenario program: %v", err)
		return vs
	}
	job := JobFor(sc, p)

	// Typed rejection of out-of-capability jobs: the fabricated unknown
	// class for every backend, plus the scenario's own class when the
	// backend genuinely doesn't support it.
	unknown := job
	unknown.Class = classUnknown
	if _, err := be.EstimateCost(unknown); !errors.Is(err, ErrUnsupported) {
		add(CheckUnsupported, "EstimateCost(class=%s) = %v, want ErrUnsupported", classUnknown, err)
	}
	if !caps.Supports(job.Class) {
		if _, err := be.EstimateCost(job); !errors.Is(err, ErrUnsupported) {
			add(CheckUnsupported, "EstimateCost(unsupported class %s) = %v, want ErrUnsupported", job.Class, err)
		}
		if err := be.Configure(p); !errors.Is(err, ErrUnsupported) {
			add(CheckUnsupported, "Configure(unsupported class %s) = %v, want ErrUnsupported", job.Class, err)
		}
		return vs // nothing to train
	}

	// Pre-Configure use fails typed.
	fresh := reg.New(env)
	if err := fresh.RunEpoch(&Stream{Rows64: sc.Tuples}); !errors.Is(err, ErrNotConfigured) {
		add(CheckNotConfigured, "RunEpoch before Configure = %v, want ErrNotConfigured", err)
	}
	if _, err := fresh.Score(sc.Init, sc.Tuples); !errors.Is(err, ErrNotConfigured) {
		add(CheckNotConfigured, "Score before Configure = %v, want ErrNotConfigured", err)
	}

	// Train and compare against the declared reference semantics.
	if err := train(be, p, sc, primaryStream(caps, sc)); err != nil {
		add(CheckTrain, "training: %v", err)
		return vs
	}
	got := be.Model()
	want, err := reference(reg, env, sc)
	if err != nil {
		add(CheckTrain, "reference trainer: %v", err)
		return vs
	}
	if caps.BitExactModel {
		if err := compareBits("model vs reference", got, want); err != nil {
			add(CheckTrain, "%v", err)
		}
	} else if err := verify.CompareModels("model vs reference", want, got, caps.ModelTolerance); err != nil {
		add(CheckTrain, "%v", err)
	}

	// Determinism: a second instance fed the alternate stream form must
	// reproduce the model bits and, where promised, the modeled
	// counters, bit for bit.
	if caps.DeterministicCounters {
		cb, ok := be.(CounterBackend)
		if !ok {
			add(CheckDeterminism, "backend %q promises deterministic counters but exposes none", reg.Name)
		} else {
			be2 := reg.New(env)
			if err := train(be2, p, sc, alternateStream(caps, sc)); err != nil {
				add(CheckDeterminism, "repeat run: %v", err)
			} else {
				if err := compareBits("repeat-run model", be2.Model(), got); err != nil {
					add(CheckDeterminism, "%v", err)
				}
				cb2 := be2.(CounterBackend)
				if a, b := cb.Counters(), cb2.Counters(); a != b {
					add(CheckDeterminism, "modeled counters diverge across delivery forms:\n  a=%+v\n  b=%+v", a, b)
				}
			}
		}
	}

	// Score: predictions against the float64 scoring rule, at the
	// backend's declared equivalence level.
	preds, err := be.Score(got, sc.Tuples)
	if err != nil {
		add(CheckScore, "Score: %v", err)
		return vs
	}
	wantPreds, err := score64(Classify(p.Graph), p.Graph, got, sc.Tuples)
	if err != nil {
		add(CheckScore, "reference score: %v", err)
		return vs
	}
	if caps.BitExactModel {
		if err := compareBits("predictions", preds, wantPreds); err != nil {
			add(CheckScore, "%v", err)
		}
	} else if err := verify.CompareModels("predictions", wantPreds, preds, caps.ModelTolerance); err != nil {
		add(CheckScore, "%v", err)
	}
	return vs
}

// compareBits demands float64 bit-identity.
func compareBits(what string, got, want []float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d != %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			return fmt.Errorf("%s: [%d] = %v != %v (bit-identity required)", what, i, got[i], want[i])
		}
	}
	return nil
}
