package backend

import (
	"fmt"
	hostrt "runtime"

	"dana/internal/cost"
	"dana/internal/engine"
	"dana/internal/hdfg"
	"dana/internal/ml"
)

// Accel is the DAnA accelerator path behind the Backend seam: the
// multi-threaded execution-engine simulator fed by the Strider
// extraction pipeline. It is the streaming backend — RunEpoch accepts
// the page-order batch stream and preserves the exact feed order the
// bit-identity invariants depend on.
type Accel struct {
	env Env

	m      *engine.Machine
	stream *engine.EpochStream
	batch  int
	class  Class
	graph  *hdfg.Graph
	// feed is stream.Feed bound once at Configure, so the per-epoch
	// streaming path allocates no closures.
	feed func([][]float32) error
	// rows32 is the scratch buffer for Rows64-form epochs.
	rows32 [][]float32
}

// NewAccel builds an unconfigured accelerator backend.
func NewAccel(env Env) *Accel { return &Accel{env: env} }

func (b *Accel) Capabilities() Capabilities {
	return Capabilities{
		Name:                  NameAccelerator,
		Classes:               AllClasses(),
		Precision:             PrecisionFloat32,
		DeterministicCounters: true,
		ModelTolerance:        5e-3, // float32 datapath vs float64 golden
		Streaming:             true,
		Accelerated:           true,
	}
}

func (b *Accel) checkJob(job Job) error {
	if !admissible(b.Capabilities(), job) {
		return fmt.Errorf("%w: %s cannot run class=%s precision=%q",
			ErrUnsupported, NameAccelerator, job.Class, job.Precision)
	}
	return nil
}

// EstimateCost prices the job as cost.DAnA: the compiled program's
// static cycle estimate at the design's thread count, pipelined against
// Strider unpacking and link transfer.
func (b *Accel) EstimateCost(job Job) (Cost, error) {
	if err := b.checkJob(job); err != nil {
		return Cost{}, err
	}
	w := job.Workload()
	if job.Engine != nil {
		est := job.Engine.Estimate(job.Design.Engine)
		w.EpochCycles = est.EpochCycles(job.Tuples, max1(job.MergeCoef), job.Design.Engine.Threads)
	}
	bd := cost.DAnA(w, b.env.Cost, job.Warm)
	return Cost{Seconds: bd.TotalSec, Breakdown: bd}, nil
}

// Configure builds the engine machine for the program, applies the
// host-worker fan-out (wall-clock only; modeled cycles are
// schedule-determined), and seeds the initial model.
func (b *Accel) Configure(p Program) error {
	return b.configure(p, p.EngineCfg, b.Capabilities())
}

// configure is shared with the embedding Tabla backend, which passes
// its own engine config and capability set.
func (b *Accel) configure(p Program, cfg engine.Config, caps Capabilities) error {
	if p.Graph == nil || p.Engine == nil {
		return fmt.Errorf("%w: %s needs a compiled engine program", ErrUnsupported, caps.Name)
	}
	class := Classify(p.Graph)
	if !caps.Supports(class) {
		return fmt.Errorf("%w: %s cannot run class=%s", ErrUnsupported, caps.Name, class)
	}
	m, err := engine.NewMachine(p.Engine, cfg)
	if err != nil {
		return err
	}
	m.SetObs(b.env.obs())
	m.SetHostWorkers(hostWorkers(b.env.Workers, p.Striders))
	init := initModel(p)
	if init != nil {
		if err := m.SetModel(narrow32(init)); err != nil {
			return err
		}
	}
	b.batch = max1(p.MergeCoef)
	if b.m != nil {
		b.m.Close()
	}
	b.m, b.class, b.graph = m, class, p.Graph
	b.stream = m.StreamEpoch(b.batch)
	b.feed = b.stream.Feed
	return nil
}

// RunEpoch runs one epoch. The Batches form drives the engine's
// incremental epoch stream in arrival order (the extraction pipeline);
// the materialized forms replay through the engine's whole-epoch entry
// point. Both charge identical modeled counters — the conformance
// suite's determinism check crosses the two forms to prove it.
func (b *Accel) RunEpoch(st *Stream) error {
	if b.m == nil {
		return ErrNotConfigured
	}
	switch {
	case st != nil && st.Batches != nil:
		b.stream.Reset()
		if err := st.Batches(b.feed); err != nil {
			return err
		}
		return b.stream.Finish()
	case st != nil && st.Rows32 != nil:
		return b.m.RunEpoch(st.Rows32, b.batch)
	case st != nil && st.Rows64 != nil:
		if len(b.rows32) != len(st.Rows64) {
			b.rows32 = make([][]float32, len(st.Rows64))
		}
		for i, row := range st.Rows64 {
			if len(b.rows32[i]) != len(row) {
				b.rows32[i] = make([]float32, len(row))
			}
			for j, v := range row {
				b.rows32[i][j] = float32(v)
			}
		}
		return b.m.RunEpoch(b.rows32, b.batch)
	default:
		return b.m.RunEpoch(nil, b.batch)
	}
}

// Score runs inference in the float32 datapath width.
func (b *Accel) Score(model []float64, rows [][]float64) ([]float64, error) {
	if b.m == nil {
		return nil, ErrNotConfigured
	}
	return score32(b.class, b.graph, model, rows)
}

func (b *Accel) Model() []float64 {
	if b.m == nil {
		return nil
	}
	return widen64(b.m.Model())
}

func (b *Accel) SetModel(m []float64) error {
	if b.m == nil {
		return ErrNotConfigured
	}
	return b.m.SetModel(narrow32(m))
}

func (b *Accel) Converged() (bool, error) {
	if b.m == nil {
		return false, ErrNotConfigured
	}
	return b.m.Converged()
}

// Counters returns the engine's modeled cycle decomposition.
func (b *Accel) Counters() engine.Stats {
	if b.m == nil {
		return engine.Stats{}
	}
	return b.m.Stats()
}

// Close releases the machine's host fan-out helpers.
func (b *Accel) Close() {
	if b.m != nil {
		b.m.Close()
	}
}

// hostWorkers mirrors the integration layer's historical clamp: 0 means
// GOMAXPROCS, capped at the design's in-process Strider count.
func hostWorkers(workers, striders int) int {
	if workers <= 0 {
		workers = hostrt.GOMAXPROCS(0)
	}
	if striders > 0 && workers > striders {
		workers = striders
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// initModel resolves a program's starting model: the explicit Init, or
// the class-canonical initialization (LRMF factor models cannot start
// at zero — a stationary point — so they get the reference small
// uniform seeding, narrowed through float32 like every accelerator
// model value).
func initModel(p Program) []float64 {
	if p.Init != nil {
		return p.Init
	}
	if p.Graph == nil || len(p.Graph.RowUpdates) == 0 {
		return nil // GLM zeros are every backend's zero value already
	}
	init := ml.InitModel(ml.LRMF{
		Users: p.Graph.Model.Shape[0], Items: 0, Rank: p.Graph.Model.Shape[1],
	}, 1)
	for i, v := range init {
		init[i] = float64(float32(v))
	}
	return init
}

func narrow32(m []float64) []float32 {
	out := make([]float32, len(m))
	for i, v := range m {
		out[i] = float32(v)
	}
	return out
}

func widen64(m []float32) []float64 {
	out := make([]float64, len(m))
	for i, v := range m {
		out[i] = float64(v)
	}
	return out
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}
