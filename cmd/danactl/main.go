// Command danactl drives a DAnA-enhanced database end to end: it loads
// a Table 3 workload (scaled), registers the matching UDF, and runs the
// accelerated training query, printing the hardware design and
// pipeline statistics.
//
//	danactl -workload "Remote Sensing LR" -scale 0.01 -merge 64 -epochs 3
//	danactl -sql "SELECT COUNT(*) FROM remote_sensing_lr" -workload "Remote Sensing LR" -scale 0.01
//	danactl -udf my_udf.dsl -workload Patient -scale 0.01   # custom DSL file
//	danactl -backend auto    # let the dispatcher pick the cheapest backend
//	                         # ("" = accelerator; or an explicit
//	                         # accelerator|tabla|cpu|sharded|weave override)
//	danactl -precision 8     # k-bit MLWeaving read path: features
//	                         # quantized to 8 bits, link ships 8/32 of
//	                         # the plane bytes (1-31; 0/32 = float path)
//
// Subcommands (same flags apply after the subcommand):
//
//	danactl stats            # train, then print the observability
//	                         # breakdown: per-component cycles (summing
//	                         # exactly to the modeled total) and
//	                         # compute/access utilization, Fig 10 style
//	danactl stats -channels 4  # adds the per-channel stream split:
//	                         # bytes, busy cycles, utilization skew
//	danactl stats -backend auto  # adds the dispatcher's per-backend cost
//	                         # table and marks the backend that served
//	danactl stats -json      # machine-readable obs snapshot instead
//	danactl trace            # train, then dump the trace-event ring
//	danactl sessions         # run a seeded multi-tenant load through the
//	                         # accelerator server and print the per-tenant
//	                         # session view (jobs, reuse, cycles); exits
//	                         # non-zero if the per-tenant counter identity
//	                         # breaks (see -help after the subcommand)
package main

import (
	"flag"
	"fmt"
	"os"

	"dana"
	"dana/internal/engine"
	"dana/internal/obs"
	"dana/internal/runtime"
)

func main() {
	args := os.Args[1:]
	mode := "train"
	if len(args) > 0 && (args[0] == "stats" || args[0] == "trace" || args[0] == "sessions") {
		mode = args[0]
		args = args[1:]
	}
	if mode == "sessions" {
		runSessions(args)
		return
	}
	var (
		workload = flag.String("workload", "Remote Sensing LR", "Table 3 workload name")
		scale    = flag.Float64("scale", 0.01, "fraction of the full tuple count to generate")
		merge    = flag.Int("merge", 64, "merge coefficient (max accelerator threads)")
		epochs   = flag.Int("epochs", 3, "training epochs")
		pageKB   = flag.Int("page", 32, "page size in KB (8, 16, 32)")
		channels = flag.Int("channels", 1, "modeled memory channels (1-32); partitions extraction and scales link bandwidth")
		be       = flag.String("backend", "", `execution backend: "" = accelerator (paper path), "auto" = cheapest by modeled cost, or accelerator|tabla|cpu|sharded|weave`)
		segments = flag.Int("segments", 0, "sharded backend's segment fan-out (0 = Greenplum baseline's 8)")
		bits     = flag.Int("precision", 0, "weave read precision in bits per feature (0/32 = full-width float path, 1-31 = k-bit any-precision weave path)")
		seed     = flag.Int64("seed", 1, "dataset generator seed")
		udfFile  = flag.String("udf", "", "optional DSL source file overriding the built-in UDF")
		sqlStmt  = flag.String("sql", "", "optional SQL to run instead of training")
		listing  = flag.Bool("listing", false, "print the compiled accelerator program listing")
		asJSON   = flag.Bool("json", false, "with the stats subcommand: print the obs snapshot as JSON")
	)
	check(flag.CommandLine.Parse(args))

	eng, err := dana.Open(dana.Config{
		PageSize: *pageKB << 10, PoolBytes: 256 << 20, Channels: *channels,
		Backend: *be, Segments: *segments, Precision: *bits,
	})
	check(err)

	ds, err := eng.LoadWorkload(*workload, *scale, *seed)
	check(err)
	if mode == "train" {
		fmt.Printf("loaded %q as table %q: %d tuples, %d pages of %d KB\n",
			ds.Workload.Name, ds.Rel.Name, ds.Tuples, ds.Rel.NumPages(), *pageKB)
	}

	if *sqlStmt != "" {
		res, err := eng.SQL(*sqlStmt)
		check(err)
		printResult(res)
		return
	}

	var algo *dana.Algo
	if *udfFile != "" {
		src, err := os.ReadFile(*udfFile)
		check(err)
		algo, err = dana.ParseUDF(string(src))
		check(err)
		check(eng.RegisterUDF(algo, *merge))
	} else {
		a, err := ds.DSLAlgo(*merge)
		check(err)
		a.SetEpochs(*epochs)
		algo = a
		check(eng.RegisterUDF(algo, *merge))
	}

	res, err := eng.Train(algo.Name, ds.Rel.Name)
	check(err)

	switch mode {
	case "stats":
		if *asJSON {
			data, err := eng.Obs().Snapshot().MarshalJSON()
			check(err)
			fmt.Println(string(data))
			return
		}
		printStats(eng, res, algo.Name, ds.Rel.Name)
		return
	case "trace":
		printTrace(eng.Obs())
		return
	}

	fmt.Printf("\naccelerator design: %s\n", res.Design)
	fmt.Printf("trained %q for %d epochs over %d tuples on backend %q\n",
		algo.Name, res.Epochs, res.Engine.Tuples, res.Backend)
	if res.Degraded {
		fmt.Printf("degraded at epoch %d, completed on backend %q\n", res.DegradedAtEpoch, res.FailoverBackend)
	}
	fmt.Printf("engine:  %d cycles (%d compute, %d merge, %d load), %d instructions\n",
		res.Engine.Cycles, res.Engine.ComputeCycles, res.Engine.MergeCycles,
		res.Engine.LoadCycles, res.Engine.Instructions)
	fmt.Printf("strider: %d pages, %d tuples, %d cycles across %d striders\n",
		res.Access.Pages, res.Access.Tuples, res.Access.Cycles, res.Design.NumStriders)
	fmt.Printf("buffer pool: %d hits, %d misses, %.3fs simulated I/O\n",
		res.Pool.Hits, res.Pool.Misses, res.Pool.IOSeconds)
	fmt.Printf("simulated end-to-end: %.4fs\n", res.SimulatedSeconds)
	if n := len(res.Model); n > 0 {
		show := n
		if show > 8 {
			show = 8
		}
		fmt.Printf("model[0:%d] = %v\n", show, res.Model[:show])
	}
	if *listing {
		fmt.Printf("\nUDF source (re-rendered from the catalog form):\n%s", dana.RenderUDF(algo))
		acc, ok := eng.Catalog().Accelerator(algo.Name)
		if ok {
			fmt.Printf("\nstrider program:\n")
			for _, in := range acc.StriderProg {
				fmt.Printf("  %s\n", in)
			}
			fmt.Printf("\nexecution engine program:\n%s", engine.Listing(acc.Program))
			if mp, err := engine.Lower(acc.Program, acc.Design.Engine); err == nil {
				pt, pm, cv := mp.Count()
				fmt.Printf("\nmicro-instruction footprint: %d per-tuple, %d post-merge, %d convergence\n", pt, pm, cv)
				show := mp.PerTuple
				if len(show) > 12 {
					show = show[:12]
				}
				for _, mi := range show {
					fmt.Printf("  %s\n", mi)
				}
				if len(mp.PerTuple) > 12 {
					fmt.Printf("  ... (%d more)\n", len(mp.PerTuple)-12)
				}
			}
		}
	}
}

// printStats renders the Fig 10-style observability breakdown: where
// every modeled accelerator cycle went, per component, with the
// compute- and access-engine utilization of the generated design. The
// per-component engine cycles must sum exactly to the modeled total —
// danactl exits non-zero if the identity is violated.
func printStats(eng *dana.Engine, res *runtime.TrainResult, udfName, table string) {
	r := eng.Obs()
	pct := func(part, whole int64) float64 {
		if whole == 0 {
			return 0
		}
		return 100 * float64(part) / float64(whole)
	}

	fmt.Printf("=== execution engine (%d threads) ===\n", res.Design.Engine.Threads)
	total := r.Get(obs.EngineCycles)
	load := r.Get(obs.EngineCyclesLoad)
	compute := r.Get(obs.EngineCyclesCompute)
	mergeCyc := r.Get(obs.EngineCyclesMerge)
	fmt.Printf("  %-22s %14d cycles\n", "total (makespan)", total)
	fmt.Printf("  %-22s %14d cycles %6.1f%%\n", "tuple load", load, pct(load, total))
	fmt.Printf("  %-22s %14d cycles %6.1f%%\n", "compute", compute, pct(compute, total))
	fmt.Printf("  %-22s %14d cycles %6.1f%%\n", "merge + broadcast", mergeCyc, pct(mergeCyc, total))
	sum := load + compute + mergeCyc
	if sum != total {
		fmt.Fprintf(os.Stderr, "danactl: cycle accounting broken: %d+%d+%d = %d != total %d\n",
			load, compute, mergeCyc, sum, total)
		os.Exit(1)
	}
	fmt.Printf("  %-22s %14d cycles (sums exactly to total)\n", "sum of components", sum)
	fmt.Printf("  %-22s %13.1f%% of %d-thread capacity (%d idle slot-cycles in merge batches)\n",
		"compute utilization", 100*res.Engine.Utilization(res.Design.Engine.Threads),
		res.Design.Engine.Threads, res.Engine.IdleCycles)

	fmt.Printf("=== access engine (%d striders) ===\n", res.Design.NumStriders)
	fmt.Printf("  %-22s %14d cycles (group-max critical path)\n", "strider cycles", r.Get(obs.StriderCycles))
	fmt.Printf("  %-22s %14d cycles (work across striders)\n", "strider work", r.Get(obs.StriderCyclesTotal))
	fmt.Printf("  %-22s %13.1f%% of %d-strider capacity\n",
		"access utilization", 100*res.Access.Utilization(res.Design.NumStriders), res.Design.NumStriders)
	fmt.Printf("  %-22s %14d pages, %d tuples, %d bytes, %d VM instructions\n",
		"walked", r.Get(obs.StriderPages), r.Get(obs.StriderTuples),
		r.Get(obs.StriderBytes), r.Get(obs.StriderInstrs))

	if n := r.Get(obs.ChannelCount); n > 0 {
		fmt.Printf("=== memory channels (%d) ===\n", n)
		var sumBytes, sumBusy, maxBusy int64
		for c := 0; c < int(n); c++ {
			bytes := r.Get(obs.ChannelBytesStreamed(c))
			busy := r.Get(obs.ChannelBusyCycles(c))
			sumBytes += bytes
			sumBusy += busy
			if busy > maxBusy {
				maxBusy = busy
			}
			fmt.Printf("  channel %-14d %14d bytes streamed, %d busy cycles\n", c, bytes, busy)
		}
		skew := 1.0
		if sumBusy > 0 {
			skew = float64(maxBusy) / (float64(sumBusy) / float64(n))
		}
		fmt.Printf("  %-22s %14.3f (max/mean busy; 1.0 = perfectly balanced)\n", "utilization skew", skew)
		// The channel split is a partition of the Strider totals: every
		// streamed byte and every busy cycle belongs to exactly one channel.
		if sumBytes != r.Get(obs.StriderBytes) || sumBusy != r.Get(obs.StriderCyclesTotal) {
			fmt.Fprintf(os.Stderr, "danactl: channel accounting broken: %d bytes / %d cycles across channels != strider totals %d / %d\n",
				sumBytes, sumBusy, r.Get(obs.StriderBytes), r.Get(obs.StriderCyclesTotal))
			os.Exit(1)
		}
	}

	fmt.Printf("=== buffer pool ===\n")
	hits, misses := r.Get(obs.PoolHits), r.Get(obs.PoolMisses)
	fmt.Printf("  %-22s %14d hits, %d misses (%.1f%% hit ratio)\n",
		"page requests", hits, misses, pct(hits, hits+misses))
	fmt.Printf("  %-22s %14d evictions, %d clock-sweep steps, %d bytes read, %.4fs simulated I/O\n",
		"replacement", r.Get(obs.PoolEvictions), r.Get(obs.PoolSweepSteps),
		r.Get(obs.PoolBytesRead), r.GetFloat(obs.PoolIOSeconds))

	fmt.Printf("=== runtime ===\n")
	nEpochs := r.Get(obs.RuntimeEpochs)
	cached := r.Get(obs.RuntimeEpochCached)
	fmt.Printf("  %-22s %14d (%d replayed from the record cache)\n", "epochs", nEpochs, cached)
	ch, cm := r.Get(obs.RuntimeCacheHits), r.Get(obs.RuntimeCacheMisses)
	fmt.Printf("  %-22s %14d hits, %d misses (%.1f%% hit rate)\n",
		"record cache", ch, cm, pct(ch, ch+cm))
	trainNs := r.Get(obs.RuntimeTrainWallNs)
	fmt.Printf("  %-22s %11.3f ms wall (%.3f ms/epoch mean)\n",
		"host time", float64(trainNs)/1e6, float64(r.Get(obs.RuntimeEpochWallNs))/1e6/float64(max64(1, nEpochs)))
	busyNs := r.Get(obs.RuntimeWorkerBusyNs)
	occ := 0.0
	if trainNs > 0 {
		occ = 100 * float64(busyNs) / float64(trainNs)
	}
	fmt.Printf("  %-22s %11.3f ms in Strider VMs (%.0f%% of train wall across workers)\n",
		"worker busy", float64(busyNs)/1e6, occ)
	fmt.Printf("=== backend dispatch ===\n")
	costs, err := eng.BackendCosts(udfName, table)
	check(err)
	for _, bc := range costs {
		marker := " "
		if bc.Name == res.Backend {
			marker = "*"
		}
		if bc.Err != "" {
			fmt.Printf("  %s %-20s rejected: %s\n", marker, bc.Name, bc.Err)
		} else {
			fmt.Printf("  %s %-20s %14.4f s modeled epoch+transfer cost\n", marker, bc.Name, bc.Seconds)
		}
	}
	fmt.Printf("    (* = served this run; -backend auto picks the cheapest admissible)\n")
	if res.Degraded {
		fmt.Printf("  %-22s epoch %d -> %q (generic backend failover)\n",
			"degraded at", res.DegradedAtEpoch, res.FailoverBackend)
	}

	fmt.Printf("=== modeled result ===\n")
	fmt.Printf("  %-22s %14.4f s simulated end-to-end\n", res.Backend, res.SimulatedSeconds)
}

// printTrace dumps the bounded trace-event ring, timestamps relative to
// the first retained event.
func printTrace(r *obs.Registry) {
	evs := r.Ring().Events()
	if len(evs) == 0 {
		fmt.Println("trace ring is empty")
		return
	}
	if d := r.Ring().Dropped(); d > 0 {
		fmt.Printf("(%d older events dropped by the ring)\n", d)
	}
	t0 := evs[0].AtNs
	fmt.Printf("%6s %12s  %-14s %12s %12s\n", "seq", "t(ms)", "event", "a", "b")
	for _, ev := range evs {
		fmt.Printf("%6d %12.3f  %-14s %12d %12d\n",
			ev.Seq, float64(ev.AtNs-t0)/1e6, ev.Name, ev.A, ev.B)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func printResult(res *dana.Result) {
	if res.Msg != "" {
		fmt.Println(res.Msg)
	}
	if len(res.Cols) > 0 {
		fmt.Println(res.Cols)
	}
	max := len(res.Rows)
	if max > 20 {
		max = 20
	}
	for _, row := range res.Rows[:max] {
		fmt.Println(row)
	}
	if len(res.Rows) > max {
		fmt.Printf("... (%d rows total)\n", len(res.Rows))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "danactl:", err)
		os.Exit(1)
	}
}
