package sql

import (
	"fmt"

	"dana/internal/bufpool"
	"dana/internal/catalog"
	"dana/internal/storage"
)

// Result is a materialized query result.
type Result struct {
	Cols []string
	Rows [][]float64
	Msg  string // for DDL/DML statements
}

// UDFRunner executes `SELECT * FROM dana.<udf>('table')`. The runtime
// package provides the DAnA implementation; the executor treats the UDF
// as a black box, as the paper's RDBMS does.
type UDFRunner interface {
	RunUDF(udfName, tableName string) (*Result, error)
}

// DB bundles the catalog, buffer pool, and executor.
type DB struct {
	Cat      *catalog.Catalog
	Pool     *bufpool.Pool
	Runner   UDFRunner
	PageSize int
}

// NewDB creates a database with the given page size and buffer pool
// byte budget.
func NewDB(pageSize int, poolBytes int64, disk bufpool.DiskModel) *DB {
	return &DB{
		Cat:      catalog.New(),
		Pool:     bufpool.NewSized(poolBytes, pageSize, disk),
		PageSize: pageSize,
	}
}

// Exec parses and runs a script, returning the last statement's result.
func (db *DB) Exec(src string) (*Result, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("sql: empty statement")
	}
	var res *Result
	for _, s := range stmts {
		res, err = db.Run(s)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Run executes a parsed statement.
func (db *DB) Run(stmt Statement) (*Result, error) {
	switch s := stmt.(type) {
	case CreateTable:
		return db.runCreate(s)
	case Insert:
		return db.runInsert(s)
	case Select:
		return db.runSelect(s)
	case DropTable:
		if err := db.Cat.DropTable(s.Name); err != nil {
			return nil, err
		}
		// Purge cached frames so a recreated table with the same name
		// cannot read the dropped table's pages.
		if err := db.Pool.InvalidateRelation(s.Name); err != nil {
			return nil, err
		}
		return &Result{Msg: fmt.Sprintf("DROP TABLE %s", s.Name)}, nil
	default:
		return nil, fmt.Errorf("sql: unhandled statement %T", stmt)
	}
}

func (db *DB) runCreate(s CreateTable) (*Result, error) {
	cols := make([]storage.Column, len(s.Cols))
	for i, cd := range s.Cols {
		t, err := storage.ParseColType(cd.Type)
		if err != nil {
			return nil, err
		}
		cols[i] = storage.Column{Name: cd.Name, Type: t}
	}
	rel, err := db.Cat.CreateTable(s.Name, storage.NewSchema(cols...), db.PageSize)
	if err != nil {
		return nil, err
	}
	if err := db.Pool.AttachRelation(rel); err != nil {
		return nil, err
	}
	return &Result{Msg: fmt.Sprintf("CREATE TABLE %s", s.Name)}, nil
}

func (db *DB) runInsert(s Insert) (*Result, error) {
	rel, err := db.Cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	for i, row := range s.Rows {
		if len(row) != rel.Schema.NumCols() {
			return nil, fmt.Errorf("sql: row %d has %d values, table %q has %d columns",
				i, len(row), s.Table, rel.Schema.NumCols())
		}
	}
	if err := rel.InsertBatch(s.Rows); err != nil {
		return nil, err
	}
	return &Result{Msg: fmt.Sprintf("INSERT 0 %d", len(s.Rows))}, nil
}

func (db *DB) runSelect(s Select) (*Result, error) {
	if s.UDF != "" {
		if db.Runner == nil {
			return nil, fmt.Errorf("sql: no UDF runner configured for dana.%s", s.UDF)
		}
		return db.Runner.RunUDF(s.UDF, s.UDFArg)
	}
	rel, err := db.Cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	schema := rel.Schema

	// Resolve projection.
	var projIdx []int
	var outCols []string
	if s.Columns == nil {
		for i, c := range schema.Cols {
			projIdx = append(projIdx, i)
			outCols = append(outCols, c.Name)
		}
	} else {
		for _, name := range s.Columns {
			i := schema.ColIndex(name)
			if i < 0 {
				return nil, fmt.Errorf("sql: column %q does not exist in %q", name, s.Table)
			}
			projIdx = append(projIdx, i)
			outCols = append(outCols, schema.Cols[i].Name)
		}
	}
	var whereIdx int
	if s.Where != nil {
		whereIdx = schema.ColIndex(s.Where.Col)
		if whereIdx < 0 {
			return nil, fmt.Errorf("sql: column %q does not exist in %q", s.Where.Col, s.Table)
		}
	}

	if len(s.Aggregates) > 0 || s.CountAll {
		return db.runAggregates(rel, s, whereIdx)
	}
	res := &Result{Cols: outCols}
	err = db.scan(rel, func(vals []float64) (bool, error) {
		if s.Where != nil && !evalPred(s.Where.Op, vals[whereIdx], s.Where.Val) {
			return true, nil
		}
		row := make([]float64, len(projIdx))
		for i, pi := range projIdx {
			row[i] = vals[pi]
		}
		res.Rows = append(res.Rows, row)
		return s.Limit < 0 || len(res.Rows) < s.Limit, nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// runAggregates evaluates a list of aggregates in one scan.
func (db *DB) runAggregates(rel *storage.Relation, s Select, whereIdx int) (*Result, error) {
	specs := s.Aggregates
	if len(specs) == 0 { // bare COUNT(*)
		specs = []AggSpec{{Func: "count", Col: "*"}}
	}
	type accum struct {
		sum      float64
		min, max float64
		n        int64
		colIdx   int
	}
	accs := make([]accum, len(specs))
	cols := make([]string, len(specs))
	for i, sp := range specs {
		cols[i] = sp.Func
		if sp.Col == "*" {
			accs[i].colIdx = -1
			continue
		}
		ci := rel.Schema.ColIndex(sp.Col)
		if ci < 0 {
			return nil, fmt.Errorf("sql: column %q does not exist in %q", sp.Col, s.Table)
		}
		cols[i] = sp.Func + "(" + sp.Col + ")"
		accs[i].colIdx = ci
	}
	err := db.scan(rel, func(vals []float64) (bool, error) {
		if s.Where != nil && !evalPred(s.Where.Op, vals[whereIdx], s.Where.Val) {
			return true, nil
		}
		for i := range accs {
			a := &accs[i]
			a.n++
			if a.colIdx < 0 {
				continue
			}
			v := vals[a.colIdx]
			a.sum += v
			if a.n == 1 || v < a.min {
				a.min = v
			}
			if a.n == 1 || v > a.max {
				a.max = v
			}
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	row := make([]float64, len(specs))
	for i, sp := range specs {
		a := accs[i]
		switch sp.Func {
		case "count":
			row[i] = float64(a.n)
		case "sum":
			row[i] = a.sum
		case "avg":
			if a.n > 0 {
				row[i] = a.sum / float64(a.n)
			}
		case "min":
			row[i] = a.min
		case "max":
			row[i] = a.max
		default:
			return nil, fmt.Errorf("sql: unknown aggregate %q", sp.Func)
		}
	}
	return &Result{Cols: cols, Rows: [][]float64{row}}, nil
}

// scan is the heap sequential scan through the buffer pool: it pins each
// page, iterates its items, and unpins. fn returns false to stop early.
func (db *DB) scan(rel *storage.Relation, fn func(vals []float64) (bool, error)) error {
	var vals []float64
	for pn := 0; pn < rel.NumPages(); pn++ {
		pg, err := db.Pool.Pin(rel.Name, uint32(pn))
		if err != nil {
			return err
		}
		stop := false
		for i := 0; i < pg.NumItems() && !stop; i++ {
			raw, err := pg.Item(i)
			if err != nil {
				db.Pool.Unpin(rel.Name, uint32(pn))
				return err
			}
			vals = vals[:0]
			vals, err = storage.DecodeTuple(rel.Schema, vals, raw)
			if err != nil {
				db.Pool.Unpin(rel.Name, uint32(pn))
				return err
			}
			cont, err := fn(vals)
			if err != nil {
				db.Pool.Unpin(rel.Name, uint32(pn))
				return err
			}
			stop = !cont
		}
		if err := db.Pool.Unpin(rel.Name, uint32(pn)); err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

func evalPred(op string, a, b float64) bool {
	switch op {
	case "=":
		return a == b
	case "<>":
		return a != b
	case "<":
		return a < b
	case ">":
		return a > b
	case "<=":
		return a <= b
	case ">=":
		return a >= b
	default:
		return false
	}
}
