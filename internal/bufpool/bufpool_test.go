package bufpool

import (
	"errors"
	"sync"
	"testing"

	"dana/internal/storage"
)

func testRelation(t *testing.T, name string, rows int) *storage.Relation {
	t.Helper()
	s := storage.NumericSchema(9)
	r := storage.NewRelation(name, s, storage.PageSize8K)
	batch := make([][]float64, rows)
	for i := range batch {
		vals := make([]float64, 10)
		for j := range vals {
			vals[j] = float64(i*10 + j)
		}
		batch[i] = vals
	}
	if err := r.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	return r
}

func newPool(t *testing.T, frames int, rels ...*storage.Relation) *Pool {
	t.Helper()
	p := New(frames, storage.PageSize8K, DefaultDisk())
	for _, r := range rels {
		if err := p.AttachRelation(r); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestPinMissThenHit(t *testing.T) {
	r := testRelation(t, "t", 100)
	p := newPool(t, 4, r)
	pg, err := p.Pin("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pg.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin("t", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Pin("t", 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin("t", 0); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss 1 hit", st)
	}
	if st.IOSeconds <= 0 {
		t.Error("miss should charge I/O time")
	}
}

func TestPinContentMatchesRelation(t *testing.T) {
	r := testRelation(t, "t", 50)
	p := newPool(t, 4, r)
	pg, err := p.Pin("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Unpin("t", 0)
	raw, err := pg.Item(0)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := storage.DecodeTuple(r.Schema, nil, raw)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 0 || vals[9] != 9 {
		t.Errorf("first tuple = %v", vals)
	}
}

func TestEvictionClockSweep(t *testing.T) {
	r := testRelation(t, "t", 2000) // many pages
	if r.NumPages() < 8 {
		t.Fatalf("need >=8 pages, got %d", r.NumPages())
	}
	p := newPool(t, 4, r)
	for pg := uint32(0); pg < 8; pg++ {
		if _, err := p.Pin("t", pg); err != nil {
			t.Fatal(err)
		}
		if err := p.Unpin("t", pg); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Misses != 8 {
		t.Errorf("misses = %d, want 8", st.Misses)
	}
	if st.Evictions != 4 {
		t.Errorf("evictions = %d, want 4", st.Evictions)
	}
	if p.Cached("t", 0) {
		t.Error("page 0 should have been evicted")
	}
}

func TestAllPinnedFails(t *testing.T) {
	r := testRelation(t, "t", 2000)
	p := newPool(t, 2, r)
	for pg := uint32(0); pg < 2; pg++ {
		//danalint:ignore pinbalance -- frames stay pinned on purpose to prove the next Pin fails
		if _, err := p.Pin("t", pg); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Pin("t", 2); err == nil {
		t.Fatal("pin with all frames pinned should fail")
	}
	if p.PinnedCount() != 2 {
		t.Errorf("PinnedCount = %d", p.PinnedCount())
	}
}

func TestUnpinErrors(t *testing.T) {
	r := testRelation(t, "t", 10)
	p := newPool(t, 2, r)
	if err := p.Unpin("t", 0); err == nil {
		t.Error("unpin of uncached page should fail")
	}
	if _, err := p.Pin("t", 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin("t", 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin("t", 0); err == nil {
		t.Error("double unpin should fail")
	}
}

func TestUnknownRelation(t *testing.T) {
	p := newPool(t, 2)
	//danalint:ignore pinbalance -- Pin is expected to fail; success is itself the test failure
	if _, err := p.Pin("ghost", 0); err == nil {
		t.Error("pin of unknown relation should fail")
	}
}

func TestWarmThenScanIsAllHits(t *testing.T) {
	r := testRelation(t, "t", 500)
	p := newPool(t, r.NumPages()+2, r)
	if err := p.Warm("t"); err != nil {
		t.Fatal(err)
	}
	for pg := 0; pg < r.NumPages(); pg++ {
		if _, err := p.Pin("t", uint32(pg)); err != nil {
			t.Fatal(err)
		}
		if err := p.Unpin("t", uint32(pg)); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Misses != 0 {
		t.Errorf("warm scan had %d misses", st.Misses)
	}
	if st.HitRatio() != 1 {
		t.Errorf("hit ratio = %v", st.HitRatio())
	}
}

func TestInvalidate(t *testing.T) {
	r := testRelation(t, "t", 100)
	p := newPool(t, 8, r)
	if err := p.Warm("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Pin("t", 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Invalidate(); err == nil {
		t.Error("invalidate with a pinned page should fail")
	}
	if err := p.Unpin("t", 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Invalidate(); err != nil {
		t.Fatal(err)
	}
	if p.Cached("t", 0) {
		t.Error("page cached after invalidate")
	}
}

func TestAttachWrongPageSize(t *testing.T) {
	s := storage.NumericSchema(1)
	r := storage.NewRelation("w", s, storage.PageSize32K)
	p := New(2, storage.PageSize8K, DefaultDisk())
	if err := p.AttachRelation(r); err == nil {
		t.Error("page size mismatch should fail")
	}
}

func TestNewSized(t *testing.T) {
	p := NewSized(1<<20, storage.PageSize8K, DefaultDisk())
	if p.NumFrames() != 128 {
		t.Errorf("NumFrames = %d, want 128", p.NumFrames())
	}
}

func TestDiskModelReadTime(t *testing.T) {
	d := DiskModel{SeqReadBytesPerSec: 100e6, ReadLatencySec: 1e-3}
	got := d.ReadTime(100e6 / 2)
	if got <= 0.5 || got > 0.502 {
		t.Errorf("ReadTime = %v", got)
	}
}

func TestChecksumVerification(t *testing.T) {
	r := testRelation(t, "t", 50)
	p := newPool(t, 4, r)
	p.VerifyChecksums = true

	// Unstamped pages (checksum 0) pass.
	if _, err := p.Pin("t", 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin("t", 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Invalidate(); err != nil {
		t.Fatal(err)
	}

	// Stamp a valid checksum: still passes.
	pg, err := r.Page(0)
	if err != nil {
		t.Fatal(err)
	}
	pg.SetChecksum(pg.ComputeChecksum())
	if _, err := p.Pin("t", 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin("t", 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Invalidate(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the backing page: the read must fail.
	pg[500] ^= 0xFF
	//danalint:ignore pinbalance -- Pin must fail the checksum; success is itself the test failure
	if _, err := p.Pin("t", 0); err == nil {
		t.Error("corrupted page passed checksum verification")
	}
}

func TestConcurrentPinUnpin(t *testing.T) {
	r := testRelation(t, "t", 4000)
	p := newPool(t, 16, r)
	nPages := r.NumPages()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				pn := uint32((g*7 + i) % nPages)
				pg, err := p.Pin("t", pn)
				if err != nil {
					// All-pinned transients are possible under heavy
					// contention with a tiny pool; anything else is a bug.
					if !errors.Is(err, ErrNoFreeFrames) {
						errs <- err
						return
					}
					continue
				}
				if err := pg.Validate(); err != nil {
					_ = p.Unpin("t", pn)
					errs <- err
					return
				}
				if err := p.Unpin("t", pn); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if p.PinnedCount() != 0 {
		t.Errorf("leaked %d pins", p.PinnedCount())
	}
	st := p.Stats()
	if st.Hits+st.Misses == 0 {
		t.Error("no accesses recorded")
	}
}

func TestInvalidateRelation(t *testing.T) {
	a := testRelation(t, "a", 200)
	b := testRelation(t, "b", 200)
	p := newPool(t, 16, a, b)
	for _, rel := range []string{"a", "b"} {
		if _, err := p.Pin(rel, 0); err != nil {
			t.Fatal(err)
		}
		if err := p.Unpin(rel, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.InvalidateRelation("a"); err != nil {
		t.Fatal(err)
	}
	if p.Cached("a", 0) {
		t.Error("a still cached")
	}
	if !p.Cached("b", 0) {
		t.Error("b was evicted too")
	}
	if _, err := p.Pin("a", 0); err == nil {
		t.Error("detached relation still pinnable")
	}
	// Pinned pages block invalidation.
	if _, err := p.Pin("b", 0); err != nil {
		t.Fatal(err)
	}
	if err := p.InvalidateRelation("b"); err == nil {
		t.Error("invalidated a relation with pinned pages")
	}
	if err := p.Unpin("b", 0); err != nil {
		t.Fatal(err)
	}
}
