package lint

// Interprocedural layer, part 1: the module-wide call graph. PR 5's
// analyzers were deliberately intra-function — every invariant was
// decidable from one body plus its package's types. The invariants that
// matter most since PR 8 are not: tenant isolation is a property of
// where values flow *between* functions, hotpath allocation-freedom is
// a property of the whole call closure, and goroutine join discipline
// couples a spawn site to the code around it. This file lifts the
// loader's output into a Module: an index of every declared function,
// with call edges resolved by CHA (class-hierarchy analysis) narrowed
// by receiver types — a static call through a concrete receiver gets
// exactly one edge; a call through an interface fans out to every
// module type that implements it.
//
// Soundness caveats (documented in DESIGN.md): calls through func
// values are recorded as unresolved (no edges); reflection is invisible;
// interface fan-out only sees implementations declared in the analyzed
// packages. Analyzers that consume the graph treat unresolved calls as
// no-ops and say so in their docs.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Module is the whole-repo analysis index handed to analyzers via
// Pass.Mod: every declared function, its resolved call sites, and the
// bottom-up summaries computed over the call graph's SCCs.
type Module struct {
	Pkgs  []*Package
	Fset  *token.FileSet
	Funcs map[string]*FuncInfo // FuncID -> info, for functions declared in Pkgs

	// Summaries holds the per-function facts computed bottom-up over
	// the call graph (see summary.go).
	Summaries map[string]*Summary

	// LockEdges is the module-wide lock-order graph: an edge records
	// one lock acquired while another was held (directly or through a
	// callee's transitive lock set).
	LockEdges []LockEdge

	funcIDs   []string // sorted keys of Funcs
	named     []*types.Named
	implCache map[string][]string
	sups      map[*Package]suppressions
}

// FuncInfo is one declared function or method.
type FuncInfo struct {
	ID   string // FuncID of Obj (stable across loads)
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	Hot  bool // carries the //dana:hotpath directive

	// Calls lists the function's call sites in source order. Calls
	// inside nested function literals are attributed to the declaring
	// function (the literal runs with its captures; for closure-level
	// precision an analyzer can re-walk the body itself).
	Calls []*CallSite

	lockAcqs   []lockAcq
	siteByCall map[*ast.CallExpr]*CallSite
}

// CallSite is one resolved call expression.
type CallSite struct {
	Call *ast.CallExpr
	Pos  token.Pos

	// Callees holds the FuncIDs the call may reach, sorted. A static
	// call has exactly one; an interface call holds the CHA fan-out
	// over module implementations. External (stdlib) callees appear
	// here too and are classified by externEffect.
	Callees []string

	// Dynamic marks interface dispatch (Callees is a CHA
	// approximation, not an exact target).
	Dynamic bool

	// Unresolved marks calls through func values: no callee is known.
	Unresolved bool

	// Cold marks sites inside an early-exit conditional branch (an
	// if/case body whose last statement is a return or panic) — the
	// error-path refinement: allocation there does not disprove
	// steady-state allocation-freedom.
	Cold bool

	// Go and Defer record how the call is consumed.
	Go    bool
	Defer bool

	// Held snapshots the lock IDs held (per the linear intra-function
	// scan) when control reaches this site.
	Held []string
}

// lockAcq is one mutex acquisition with the locks held at that point.
type lockAcq struct {
	id   string
	held []string
	pos  token.Pos
}

// FuncID returns the stable identifier used for call-graph keys:
// types.Func.FullName, e.g. "dana/internal/bufpool.(*Pool).Pin"
// renders as "(*dana/internal/bufpool.Pool).Pin".
func FuncID(fn *types.Func) string { return fn.FullName() }

// BuildModule indexes the analysis packages, resolves every call site,
// and computes the bottom-up summaries. All iteration is over sorted
// keys so two builds of the same module yield identical results
// (TestAnalyzerDeterminism pins this).
func BuildModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:      pkgs,
		Funcs:     map[string]*FuncInfo{},
		Summaries: map[string]*Summary{},
		implCache: map[string][]string{},
		sups:      map[*Package]suppressions{},
	}
	if len(pkgs) > 0 {
		m.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		m.sups[pkg] = collectSuppressions(pkg.Fset, pkg.Files)
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				if named, ok := tn.Type().(*types.Named); ok && !types.IsInterface(named) {
					m.named = append(m.named, named)
				}
			}
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{
					ID:         FuncID(obj),
					Obj:        obj,
					Decl:       fd,
					Pkg:        pkg,
					Hot:        isHotpathMarked(fd.Doc),
					siteByCall: map[*ast.CallExpr]*CallSite{},
				}
				m.Funcs[fi.ID] = fi
			}
		}
	}
	sort.Slice(m.named, func(i, j int) bool {
		return m.named[i].String() < m.named[j].String()
	})
	m.funcIDs = make([]string, 0, len(m.Funcs))
	for id := range m.Funcs {
		m.funcIDs = append(m.funcIDs, id)
	}
	sort.Strings(m.funcIDs)
	for _, id := range m.funcIDs {
		m.collectCalls(m.Funcs[id])
	}
	buildSummaries(m)
	return m
}

// Site returns the resolved CallSite for a call expression inside fn
// (nil when the expression was not indexed).
func (fi *FuncInfo) Site(call *ast.CallExpr) *CallSite { return fi.siteByCall[call] }

// FuncIDs returns the sorted IDs of all indexed functions.
func (m *Module) FuncIDs() []string { return m.funcIDs }

// InfoFor resolves the FuncInfo of a declared function object, nil for
// external (stdlib) functions.
func (m *Module) InfoFor(fn *types.Func) *FuncInfo {
	if fn == nil {
		return nil
	}
	return m.Funcs[FuncID(fn)]
}

// collectCalls walks one body, resolving call sites and threading the
// linear lock-hold state (see summary.go for how Held is consumed).
func (m *Module) collectCalls(fi *FuncInfo) {
	var held []string
	inspectStack(fi.Decl.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		site := &CallSite{Call: call, Pos: call.Pos(), Cold: coldSite(call, stack)}
		if len(stack) > 0 {
			switch stack[len(stack)-1].(type) {
			case *ast.GoStmt:
				site.Go = true
			case *ast.DeferStmt:
				site.Defer = true
			}
		}
		callees, dynamic, unresolved := m.resolveCall(fi.Pkg, call)
		site.Callees, site.Dynamic, site.Unresolved = callees, dynamic, unresolved

		// Linear lock tracking: Lock pushes, Unlock pops, a deferred
		// Unlock releases only at exit (so the lock stays held for the
		// rest of the scan — exactly the window order edges care about).
		site.Held = append([]string(nil), held...)
		if id, acquire, release := lockOp(fi.Pkg, fi, call); id != "" {
			if acquire {
				fi.lockAcqs = append(fi.lockAcqs, lockAcq{id: id, held: site.Held, pos: call.Pos()})
				held = append(held, id)
			} else if release && !site.Defer {
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == id {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
		}
		fi.Calls = append(fi.Calls, site)
		fi.siteByCall[call] = site
		return true
	})
}

// resolveCall maps one call expression to callee FuncIDs.
func (m *Module) resolveCall(pkg *Package, call *ast.CallExpr) (ids []string, dynamic, unresolved bool) {
	fun := ast.Unparen(call.Fun)
	// Unwrap generic instantiation syntax f[T](...).
	switch g := fun.(type) {
	case *ast.IndexExpr:
		if tv, ok := pkg.TypesInfo.Types[g.Index]; ok && tv.IsType() {
			fun = ast.Unparen(g.X)
		}
	case *ast.IndexListExpr:
		fun = ast.Unparen(g.X)
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := pkg.TypesInfo.Uses[f].(type) {
		case *types.Func:
			return []string{FuncID(obj)}, false, false
		case *types.Builtin, *types.TypeName, nil:
			return nil, false, false
		default:
			return nil, false, true // func value
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.TypesInfo.Selections[f]; ok {
			if sel.Kind() != types.MethodVal {
				return nil, false, true // func-typed field
			}
			fn := sel.Obj().(*types.Func)
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				return m.implementations(iface, fn), true, false
			}
			return []string{FuncID(fn)}, false, false
		}
		// Qualified identifier (pkg.Func) or conversion.
		switch obj := pkg.TypesInfo.Uses[f.Sel].(type) {
		case *types.Func:
			return []string{FuncID(obj)}, false, false
		case *types.TypeName, nil:
			return nil, false, false
		default:
			return nil, false, true
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: its body is already attributed
		// to the enclosing function by the walk.
		return nil, false, false
	default:
		if tv, ok := pkg.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return nil, false, false // conversion
		}
		return nil, false, true
	}
}

// implementations is the CHA fan-out: every module type whose method
// set satisfies iface contributes its concrete method. Results are
// cached and sorted.
func (m *Module) implementations(iface *types.Interface, method *types.Func) []string {
	key := iface.String() + "\x00" + method.Name()
	if got, ok := m.implCache[key]; ok {
		return got
	}
	seen := map[string]bool{}
	var ids []string
	for _, named := range m.named {
		var recv types.Type
		if types.Implements(named, iface) {
			recv = named
		} else if p := types.NewPointer(named); types.Implements(p, iface) {
			recv = p
		} else {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, method.Pkg(), method.Name())
		if fn, ok := obj.(*types.Func); ok {
			id := FuncID(fn)
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	sort.Strings(ids)
	m.implCache[key] = ids
	return ids
}

// inspectStack is ast.Inspect with an ancestor stack (stack excludes n
// itself; stack[len-1] is n's parent).
func inspectStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !f(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// coldSite reports whether n sits in an early-exit conditional branch:
// the innermost enclosing if/case/select-clause body whose statement
// list terminates in a return or panic, before any enclosing loop or
// function boundary. `if err != nil { return ...fmt.Errorf... }` is the
// canonical cold shape — allocation there happens once per failure,
// not once per page, so it does not disprove hotpath allocation
// freedom (and faulterrors *requires* the wrap allocation).
func coldSite(n ast.Node, stack []ast.Node) bool {
	child := ast.Node(n)
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncDecl, *ast.FuncLit:
			return false
		case *ast.IfStmt:
			if child == ast.Node(s.Body) && terminatesEarly(s.Body.List) {
				return true
			}
			if blk, ok := s.Else.(*ast.BlockStmt); ok && child == ast.Node(blk) && terminatesEarly(blk.List) {
				return true
			}
		case *ast.CaseClause:
			if terminatesEarly(s.Body) {
				return true
			}
		case *ast.CommClause:
			if terminatesEarly(s.Body) {
				return true
			}
		}
		child = stack[i]
	}
	return false
}

// terminatesEarly reports whether a branch body ends in return or a
// terminating call (panic, t.Fatal, os.Exit, ...).
func terminatesEarly(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		return isTerminatingCall(last.X)
	default:
		return false
	}
}

// lockOp classifies a call as a mutex acquire/release and names the
// lock. Lock identity is normalized to the owning type and field
// ("server.tenant.mu") — two instances of the same field are one lock
// for ordering purposes, which is the useful granularity for a
// consistent-order discipline (and errs toward reporting).
func lockOp(pkg *Package, fi *FuncInfo, call *ast.CallExpr) (id string, acquire, release bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		release = true
	default:
		return "", false, false
	}
	s, ok := pkg.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", false, false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", false, false
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return "", false, false
	}
	return lockID(pkg, fi, sel.X), acquire, release
}

// lockID names the mutex: "pkgname.Owner.field" for a struct field,
// "pkgname.Func.var" for a function-local mutex.
func lockID(pkg *Package, fi *FuncInfo, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if t := pkg.TypesInfo.Types[e.X].Type; t != nil {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return pkg.Types.Name() + "." + named.Obj().Name() + "." + e.Sel.Name
			}
		}
		return pkg.Types.Name() + "." + exprString(e)
	case *ast.Ident:
		return pkg.Types.Name() + "." + fi.Obj.Name() + "." + e.Name
	default:
		return pkg.Types.Name() + "." + exprString(expr)
	}
}
