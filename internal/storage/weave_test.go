package storage

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// gridRow returns feature values on the 2⁻²³ grid in [-1, 1): with the
// fixed range {Offset: -1, Scale: 2} these normalize to exact multiples
// of 2⁻²⁴, so quantization is lossless and a full-width decode must be
// bit-exact. The weave-clean verify scenarios use the same grid.
func gridVal(n uint32) float32 {
	return float32(n%(1<<24))*float32(1.0/(1<<23)) - 1
}

var gridRange = WeaveRange{Offset: -1, Scale: 2}

func buildGridPage(t *testing.T, ncols, nrows int, seed int64) (WeavePage, [][]float32, []float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ranges := make([]WeaveRange, ncols)
	feats := make([][]float32, nrows)
	labels := make([]float32, nrows)
	for c := range ranges {
		ranges[c] = gridRange
	}
	for r := range feats {
		row := make([]float32, ncols)
		for c := range row {
			row[c] = gridVal(rng.Uint32())
		}
		feats[r] = row
		labels[r] = float32(rng.NormFloat64())
	}
	p, err := BuildWeavePage(ranges, feats, labels)
	if err != nil {
		t.Fatalf("BuildWeavePage: %v", err)
	}
	return p, feats, labels
}

func TestWeaveQuantizeRoundTripOnGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10000; i++ {
		v := gridVal(rng.Uint32())
		q := WeaveQuantize(v, gridRange)
		if got := WeaveDequantize(q, WeaveMaxBits, gridRange); got != v {
			t.Fatalf("grid value %v round-trips to %v (code %#x)", v, got, q)
		}
	}
}

func TestWeaveQuantizeSaturates(t *testing.T) {
	r := WeaveRange{Offset: 0, Scale: 1}
	cases := []struct {
		v    float32
		want uint32
	}{
		{-0.5, 0},
		{-1e30, 0},
		{1.5, math.MaxUint32},
		{1e30, math.MaxUint32},
		{float32(math.NaN()), 0},
		{float32(math.Inf(1)), math.MaxUint32},
		{float32(math.Inf(-1)), 0},
		{0, 0},
	}
	for _, c := range cases {
		if got := WeaveQuantize(c.v, r); got != c.want {
			t.Errorf("WeaveQuantize(%v) = %#x, want %#x", c.v, got, c.want)
		}
	}
}

func TestWeaveDequantizeBoundedError(t *testing.T) {
	// At k bits the truncated code drops at most 2⁻ᵏ of the normalized
	// domain, quantization rounding adds 2⁻³² (plus one code of clamp
	// slack at the top), and the float32 narrowing of the reconstruction
	// adds one ulp. The oracle in internal/verify enforces the same bound.
	rng := rand.New(rand.NewSource(10))
	r := WeaveRange{Offset: -3, Scale: 7}
	for i := 0; i < 2000; i++ {
		v := r.Offset + r.Scale*rng.Float32()
		q := WeaveQuantize(v, r)
		for _, bits := range []int{1, 2, 3, 5, 8, 13, 16, 21, 24, 32} {
			got := WeaveDequantize(q, bits, r)
			bound := float64(r.Scale)*(math.Pow(2, -float64(bits))+math.Pow(2, -31)) + 1e-5
			if diff := math.Abs(float64(got) - float64(v)); diff > bound {
				t.Fatalf("bits=%d v=%v got=%v: |diff|=%g > bound %g", bits, v, got, diff, bound)
			}
		}
	}
}

func TestWeaveDequantizeTruncationMonotone(t *testing.T) {
	// Dropping bits can only remove low-order code mass: the k-bit
	// reconstruction never exceeds the (k+1)-bit one.
	rng := rand.New(rand.NewSource(11))
	r := WeaveRange{Offset: 2, Scale: 5}
	for i := 0; i < 500; i++ {
		q := rng.Uint32()
		prev := WeaveDequantize(q, WeaveMaxBits, r)
		for bits := WeaveMaxBits - 1; bits >= 1; bits-- {
			cur := WeaveDequantize(q, bits, r)
			if cur > prev {
				t.Fatalf("code %#x: %d-bit decode %v > %d-bit decode %v", q, bits, cur, bits+1, prev)
			}
			prev = cur
		}
	}
}

func TestBuildWeavePageLayout(t *testing.T) {
	const ncols, nrows = 3, 130 // spans three plane words: 130 = 2×64 + 2
	p, feats, labels := buildGridPage(t, ncols, nrows, 1)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.Version() != WeaveVersion || p.NumCols() != ncols || p.NumRows() != nrows {
		t.Fatalf("header = (v%d, %d cols, %d rows)", p.Version(), p.NumCols(), p.NumRows())
	}
	if got, want := p.PlaneWords(), (nrows+63)/64; got != want {
		t.Fatalf("PlaneWords = %d, want %d", got, want)
	}
	if len(p) != WeavePageSize(ncols, nrows) {
		t.Fatalf("len = %d, want %d", len(p), WeavePageSize(ncols, nrows))
	}
	for c := 0; c < ncols; c++ {
		if p.Range(c) != gridRange {
			t.Fatalf("Range(%d) = %+v", c, p.Range(c))
		}
	}
	for r, want := range labels {
		if got := p.Label(r); got != want {
			t.Fatalf("Label(%d) = %v, want %v", r, got, want)
		}
	}
	// Plane area is level-major: reading levels [0,k) is one contiguous
	// prefix, and each level advances by ncols × planeWords words.
	stride := ncols * p.PlaneWords() * 8
	for level := 0; level < WeaveMaxBits; level++ {
		if got, want := p.PlaneOffset(level, 0), p.PlaneOffset(0, 0)+level*stride; got != want {
			t.Fatalf("PlaneOffset(%d,0) = %d, want %d", level, got, want)
		}
	}
	if p.PlaneOffset(WeaveMaxBits, 0) != -1 || p.PlaneOffset(0, ncols) != -1 || p.PlaneOffset(-1, 0) != -1 {
		t.Fatal("out-of-range PlaneOffset must return -1")
	}
	if got, want := p.PlaneOffset(WeaveMaxBits-1, ncols-1)+p.PlaneWords()*8, len(p); got != want {
		t.Fatalf("last plane ends at %d, page is %d bytes", got, want)
	}
	// Spot-check one bit: the MSB plane of column 0 holds row r's code MSB.
	for r := 0; r < nrows; r++ {
		q := WeaveQuantize(feats[r][0], gridRange)
		off := p.PlaneOffset(0, 0) + (r/64)*8
		word := uint64(0)
		for i := 0; i < 8; i++ {
			word |= uint64(p[off+i]) << (8 * i)
		}
		got := word>>(uint(r%64))&1 == 1
		if want := q>>(WeaveMaxBits-1)&1 == 1; got != want {
			t.Fatalf("row %d MSB: plane says %v, code %#x says %v", r, got, q, want)
		}
	}
}

func TestWeavePageValidateRejects(t *testing.T) {
	base, _, _ := buildGridPage(t, 2, 70, 2)
	mutate := func(fn func(p WeavePage) WeavePage) WeavePage {
		p := append(WeavePage(nil), base...)
		return fn(p)
	}
	cases := []struct {
		name string
		page WeavePage
	}{
		{"empty", nil},
		{"short header", base[:WeaveHeaderSize-1]},
		{"bad magic", mutate(func(p WeavePage) WeavePage { p[0] ^= 0xFF; return p })},
		{"bad version", mutate(func(p WeavePage) WeavePage { p[4] = 99; return p })},
		{"zero cols", mutate(func(p WeavePage) WeavePage { p[6], p[7] = 0, 0; return p })},
		{"huge cols", mutate(func(p WeavePage) WeavePage { p[6], p[7] = 0xFF, 0xFF; return p })},
		{"zero rows", mutate(func(p WeavePage) WeavePage { p[8], p[9], p[10], p[11] = 0, 0, 0, 0; return p })},
		{"huge rows", mutate(func(p WeavePage) WeavePage { p[8], p[9], p[10], p[11] = 0xFF, 0xFF, 0xFF, 0xFF; return p })},
		{"wrong plane words", mutate(func(p WeavePage) WeavePage { p[12]++; return p })},
		{"truncated planes", base[:len(base)-8]},
		{"trailing garbage", append(append(WeavePage(nil), base...), 0)},
		{"zero scale", mutate(func(p WeavePage) WeavePage {
			// Column 0's Scale field is the second float of the first range.
			for i := 0; i < 4; i++ {
				p[WeaveHeaderSize+4+i] = 0
			}
			return p
		})},
	}
	for _, c := range cases {
		err := c.page.Validate()
		if !errors.Is(err, ErrWeaveCorrupt) {
			t.Errorf("%s: Validate = %v, want ErrWeaveCorrupt", c.name, err)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("pristine page must validate: %v", err)
	}
}

func TestBuildWeavePageRejects(t *testing.T) {
	ranges := []WeaveRange{gridRange}
	rows := [][]float32{{0.5}}
	labels := []float32{1}
	cases := []struct {
		name string
		fn   func() error
	}{
		{"no columns", func() error { _, err := BuildWeavePage(nil, rows, labels); return err }},
		{"no rows", func() error { _, err := BuildWeavePage(ranges, nil, nil); return err }},
		{"label mismatch", func() error { _, err := BuildWeavePage(ranges, rows, nil); return err }},
		{"ragged row", func() error { _, err := BuildWeavePage(ranges, [][]float32{{1, 2}}, labels); return err }},
		{"bad range", func() error {
			_, err := BuildWeavePage([]WeaveRange{{Offset: 0, Scale: 0}}, rows, labels)
			return err
		}},
	}
	for _, c := range cases {
		if err := c.fn(); !errors.Is(err, ErrWeaveUnsupported) {
			t.Errorf("%s: err = %v, want ErrWeaveUnsupported", c.name, err)
		}
	}
}

func TestWeavePageSizeIdentities(t *testing.T) {
	for _, g := range []struct{ ncols, nrows int }{{1, 1}, {1, 64}, {2, 65}, {7, 1000}, {16, 64 * 3}} {
		size := WeavePageSize(g.ncols, g.nrows)
		split := WeaveFixedPageBytes(g.ncols, g.nrows) + WeaveMaxBits*WeaveBitPageBytes(g.ncols, g.nrows)
		if int64(size) != split {
			t.Errorf("(%d,%d): WeavePageSize %d != fixed+32×bit %d", g.ncols, g.nrows, size, split)
		}
	}
	for _, pageSize := range []int{1 << 12, 1 << 15, 1 << 20} {
		for _, ncols := range []int{1, 3, 10, 50} {
			rows := WeavePageRows(pageSize, ncols)
			if rows < 1 {
				t.Fatalf("WeavePageRows(%d,%d) = %d", pageSize, ncols, rows)
			}
			if rows > 1 && WeavePageSize(ncols, rows) > pageSize {
				t.Errorf("WeavePageRows(%d,%d) = %d overflows: page is %d bytes",
					pageSize, ncols, rows, WeavePageSize(ncols, rows))
			}
			if next := WeavePageSize(ncols, rows+1); next <= pageSize {
				t.Errorf("WeavePageRows(%d,%d) = %d not maximal: %d rows still fit (%d bytes)",
					pageSize, ncols, rows, rows+1, next)
			}
		}
	}
}

func TestCheckWeaveSchema(t *testing.T) {
	if err := CheckWeaveSchema(NumericSchema(4)); err != nil {
		t.Fatalf("NumericSchema: %v", err)
	}
	if err := CheckWeaveSchema(RatingSchema()); !errors.Is(err, ErrWeaveUnsupported) {
		t.Errorf("RatingSchema (int4 columns): err = %v, want ErrWeaveUnsupported", err)
	}
	if err := CheckWeaveSchema(NewSchema(Column{Name: "label", Type: TFloat32})); !errors.Is(err, ErrWeaveUnsupported) {
		t.Errorf("single column: err = %v, want ErrWeaveUnsupported", err)
	}
	if err := CheckWeaveSchema(NewSchema(
		Column{Name: "f0", Type: TFloat64},
		Column{Name: "label", Type: TFloat32},
	)); !errors.Is(err, ErrWeaveUnsupported) {
		t.Errorf("float8 feature: err = %v, want ErrWeaveUnsupported", err)
	}
}

func TestCheckWeaveTupleRejections(t *testing.T) {
	s := NumericSchema(2)
	clean, err := EncodeTuple(s, []float64{0.25, 0.5, 1}, 2, TID{})
	if err != nil {
		t.Fatal(err)
	}
	if err := checkWeaveTuple(s, clean); err != nil {
		t.Fatalf("clean tuple: %v", err)
	}
	nulled, err := EncodeTupleWithNulls(s, []float64{0.25, 0, 1}, []bool{false, true, false}, 2, TID{})
	if err != nil {
		t.Fatal(err)
	}
	if err := checkWeaveTuple(s, nulled); !errors.Is(err, ErrWeaveUnsupported) {
		t.Errorf("null bitmap: err = %v, want ErrWeaveUnsupported", err)
	}
	varlena, err := AppendVarlena(append([]byte(nil), clean...), []byte("towed array"))
	if err != nil {
		t.Fatal(err)
	}
	if err := checkWeaveTuple(s, varlena); !errors.Is(err, ErrWeaveUnsupported) {
		t.Errorf("varlena tail: err = %v, want ErrWeaveUnsupported", err)
	}
}

func TestWeaveRanges(t *testing.T) {
	feats := [][]float32{{-2, 5, 3}, {4, 5, 1}, {0, 5, 2}}
	ranges := WeaveRanges(feats, 3)
	if ranges[0].Offset != -2 || ranges[0].Scale <= 6 {
		t.Errorf("col 0 range = %+v, want offset -2, scale just above 6", ranges[0])
	}
	// The widened scale keeps the maximum strictly inside [0,1): its code
	// stays below saturation so max round-trips like any interior point.
	if q := WeaveQuantize(4, ranges[0]); q == math.MaxUint32 {
		t.Error("column max saturated; Scale widening failed")
	}
	if ranges[1] != (WeaveRange{Offset: 5, Scale: 1}) {
		t.Errorf("degenerate col 1 range = %+v, want {5 1}", ranges[1])
	}
}

func TestBuildWeaveRelation(t *testing.T) {
	const nfeat, ntup = 3, 1200 // an 8K weave page holds ~500 3-feature rows
	rel := NewRelation("train", NumericSchema(nfeat), PageSize8K)
	rng := rand.New(rand.NewSource(3))
	var want [][]float64
	for i := 0; i < ntup; i++ {
		row := make([]float64, nfeat+1)
		for c := 0; c < nfeat; c++ {
			row[c] = float64(gridVal(rng.Uint32()))
		}
		row[nfeat] = float64(int(rng.Int31n(2))*2 - 1)
		want = append(want, row)
		if _, err := rel.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	pages, err := BuildWeaveRelation(rel, nil, 0)
	if err != nil {
		t.Fatalf("BuildWeaveRelation: %v", err)
	}
	rows := 0
	for i, p := range pages {
		if err := p.Validate(); err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		if p.NumCols() != nfeat {
			t.Fatalf("page %d: %d cols", i, p.NumCols())
		}
		for r := 0; r < p.NumRows(); r++ {
			if got, wantLb := float64(p.Label(r)), want[rows+r][nfeat]; got != wantLb {
				t.Fatalf("page %d row %d label %v, want %v", i, r, got, wantLb)
			}
		}
		rows += p.NumRows()
	}
	if rows != ntup {
		t.Fatalf("pages hold %d rows, relation has %d", rows, ntup)
	}
	if len(pages) < 2 {
		t.Fatalf("expected multiple pages for %d tuples on 8K budget, got %d", ntup, len(pages))
	}

	// Typed rejections surface through the relation path too.
	if _, err := BuildWeaveRelation(NewRelation("r", RatingSchema(), 0), nil, 0); !errors.Is(err, ErrWeaveUnsupported) {
		t.Errorf("rating schema: err = %v, want ErrWeaveUnsupported", err)
	}
	if _, err := BuildWeaveRelation(NewRelation("e", NumericSchema(2), 0), nil, 0); !errors.Is(err, ErrWeaveUnsupported) {
		t.Errorf("empty relation: err = %v, want ErrWeaveUnsupported", err)
	}
}
