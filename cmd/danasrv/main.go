// Command danasrv runs DAnA's multi-tenant accelerator server: named
// tenants submit train/score jobs against a bounded pool of accelerator
// instances, admitted under per-tenant quotas and scheduled
// sequence-aware (reuse a loaded configuration when the queue makes it
// worth keeping, reconfigure when it does not).
//
//	danasrv                         # seeded open-loop load, default sizes
//	danasrv -tenants 8 -jobs 64 -rate 12 -instances 3
//	danasrv -policy reconfigure     # always-reconfigure baseline policy
//	danasrv -compare                # also plan the baseline and report speedup
//	danasrv -faulty tenant0         # give tenant0 a Strider trap storm
//	                                # (isolation demo: only tenant0 degrades)
//	danasrv -stdin                  # line protocol on stdin:
//	                                #   train <tenant> <workload>
//	                                #   score <tenant> <workload>
//	                                #   run            (drain the batch)
//	                                #   sessions       (per-tenant counters)
//	                                #   quit
//
// The process exits non-zero if any job fails, or if the per-tenant
// counter identity (tenant counters summing exactly to the per-tenant
// registry totals) is violated.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dana/internal/fault"
	"dana/internal/obs"
	"dana/internal/server"
)

func main() {
	var (
		tenants   = flag.Int("tenants", 4, "number of named tenants (tenant0..tenantN-1)")
		jobs      = flag.Int("jobs", 32, "jobs in the generated open-loop load")
		rate      = flag.Float64("rate", 8, "open-loop arrival rate, jobs per virtual second")
		scale     = flag.Float64("scale", 0.002, "dataset scale per job")
		epochs    = flag.Int("epochs", 2, "training epoch budget per job")
		seed      = flag.Int64("seed", 1, "load and dataset seed")
		instances = flag.Int("instances", 2, "accelerator instances in the pool")
		policy    = flag.String("policy", "sequence", "scheduling policy: sequence | reconfigure")
		slack     = flag.Float64("slack", 0, "affinity batching fair-share slack in virtual seconds (0 = default)")
		scoreFrac = flag.Float64("score-frac", 0.25, "fraction of jobs that are batch-scoring requests")
		faulty    = flag.String("faulty", "", "tenant name to run under a persistent Strider trap storm")
		compare   = flag.Bool("compare", false, "also plan the load under always-reconfigure and report the makespan ratio")
		stdin     = flag.Bool("stdin", false, "read a job script from stdin instead of generating a load")
	)
	flag.Parse()

	pol, err := server.ParsePolicy(*policy)
	check(err)
	load := server.LoadConfig{
		Seed: *seed, Tenants: *tenants, Jobs: *jobs, RateJobsPerSec: *rate,
		Scale: *scale, Epochs: *epochs, ScoreFraction: *scoreFrac,
	}
	tcs := server.DefaultTenants(*tenants)
	if *faulty != "" {
		found := false
		for i := range tcs {
			if tcs[i].Name == *faulty {
				var rates [fault.NumPoints]float64
				rates[fault.StriderTrap] = 1.0
				tcs[i].Faults = &fault.Config{
					Seed:              uint64(*seed),
					Rates:             rates,
					TransientAttempts: -1,
				}
				found = true
			}
		}
		if !found {
			check(fmt.Errorf("-faulty %q: no such tenant", *faulty))
		}
	}
	srv, err := server.New(server.Config{
		Tenants:       tcs,
		Instances:     *instances,
		Policy:        pol,
		Seed:          *seed,
		BatchSlackSec: *slack,
	})
	check(err)

	if *stdin {
		repl(srv, load)
		return
	}

	specs := server.GenLoad(load)
	rep, err := srv.Run(specs)
	check(err)
	server.WriteReport(os.Stdout, rep)
	if *compare {
		base, err := srv.Replan(specs, server.PolicyAlwaysReconfigure)
		check(err)
		ratio := 0.0
		if rep.MakespanSec > 0 {
			ratio = base.Makespan / rep.MakespanSec
		}
		fmt.Printf("always-reconfigure plan: makespan %.3fs (%.2fx vs %s)\n",
			base.Makespan, ratio, rep.Policy)
	}
	check(srv.IdentityError())
	if rep.Errors > 0 && *faulty == "" {
		check(fmt.Errorf("%d job(s) failed on a fault-free run", rep.Errors))
	}
}

// repl reads the stdin line protocol, batching submissions until "run".
func repl(srv *server.Server, load server.LoadConfig) {
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "train", "score":
			if len(fields) < 3 {
				fmt.Fprintf(os.Stderr, "usage: %s <tenant> <workload...> [scale]\n", fields[0])
				continue
			}
			kind := server.KindTrain
			if fields[0] == "score" {
				kind = server.KindScore
			}
			// The workload name may contain spaces ("Remote Sensing LR");
			// a trailing float, if present, is the scale.
			args := fields[2:]
			scale := load.Scale
			if len(args) > 1 {
				if f, err := strconv.ParseFloat(args[len(args)-1], 64); err == nil {
					scale = f
					args = args[:len(args)-1]
				}
			}
			err := srv.Submit(server.JobSpec{
				Tenant:   fields[1],
				Kind:     kind,
				Workload: strings.Join(args, " "),
				Scale:    scale,
				Epochs:   load.Epochs,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "danasrv:", err)
			}
		case "run":
			rep, err := srv.Drain()
			if err != nil {
				fmt.Fprintln(os.Stderr, "danasrv:", err)
				continue
			}
			if rep == nil {
				fmt.Println("nothing pending")
				continue
			}
			server.WriteReport(os.Stdout, rep)
		case "sessions", "stats":
			printSessions(srv)
		case "quit", "exit":
			check(srv.IdentityError())
			return
		default:
			fmt.Fprintf(os.Stderr, "danasrv: unknown command %q (train/score/run/sessions/quit)\n", fields[0])
		}
	}
	check(sc.Err())
	check(srv.IdentityError())
}

// printSessions renders the live per-tenant counter view from the
// server registry (same numbers danactl sessions shows).
func printSessions(srv *server.Server) {
	r := srv.Obs()
	fmt.Printf("%-10s %5s %6s %6s %5s %5s %6s %8s %10s %14s %14s\n",
		"tenant", "jobs", "trains", "scores", "errs", "degr", "reuse", "reconf", "wait_ms", "engine_cyc", "strider_cyc")
	for _, name := range srv.TenantNames() {
		get := func(metric string) int64 {
			return r.Get(obs.TenantCounter(name, metric))
		}
		fmt.Printf("%-10s %5d %6d %6d %5d %5d %6d %8d %10.1f %14d %14d\n",
			name,
			get(obs.TenantMetricJobs), get(obs.TenantMetricTrains), get(obs.TenantMetricScores),
			get(obs.TenantMetricErrors), get(obs.TenantMetricDegraded),
			get(obs.TenantMetricReuses), get(obs.TenantMetricReconfigs),
			float64(get(obs.TenantMetricWaitMicros))/1e3,
			get(obs.TenantMetricEngineCycles), get(obs.TenantMetricStriderCycles))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "danasrv:", err)
		os.Exit(1)
	}
}
