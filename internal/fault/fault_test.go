package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func rates(pairs ...interface{}) [NumPoints]float64 {
	var r [NumPoints]float64
	for i := 0; i < len(pairs); i += 2 {
		switch v := pairs[i+1].(type) {
		case float64:
			r[pairs[i].(Point)] = v
		case int:
			r[pairs[i].(Point)] = float64(v)
		}
	}
	return r
}

func TestNilInjectorIsDisabled(t *testing.T) {
	var in *Injector
	if err := in.ReadFault("t", 0); err != nil {
		t.Fatal(err)
	}
	if v := in.ReadLatencySec("t", 0); v != 0 {
		t.Fatalf("latency %v on nil injector", v)
	}
	buf := []byte{1, 2, 3, 4}
	if in.CorruptCopy("t", 0, buf) {
		t.Fatal("nil injector corrupted a buffer")
	}
	if err := in.TrapFault(0, 0); err != nil {
		t.Fatal(err)
	}
	if d := in.StallDelay(0, 0); d != 0 {
		t.Fatalf("stall %v on nil injector", d)
	}
	if err := in.ClusterFault(0); err != nil {
		t.Fatal(err)
	}
	if in.Count(PoolRead) != 0 || in.TotalCount() != 0 {
		t.Fatal("nil injector counted faults")
	}
	in.Reset() // must not panic
}

func TestZeroRatesNeverFire(t *testing.T) {
	in := New(Config{Seed: 7})
	for pn := uint32(0); pn < 2000; pn++ {
		if err := in.ReadFault("t", pn); err != nil {
			t.Fatal(err)
		}
		if err := in.TrapFault(int(pn)%4, int(pn)); err != nil {
			t.Fatal(err)
		}
	}
	if in.TotalCount() != 0 {
		t.Fatalf("zero-rate schedule fired %d faults", in.TotalCount())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := Config{Seed: 0xDA7A, Rates: rates(PoolRead, 0.2), TransientAttempts: -1}
	fire := func() []bool {
		in := New(cfg)
		out := make([]bool, 500)
		for pn := range out {
			out[pn] = in.ReadFault("tbl", uint32(pn)) != nil
		}
		return out
	}
	a, b := fire(), fire()
	nfired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("page %d: run A fired=%v, run B fired=%v", i, a[i], b[i])
		}
		if a[i] {
			nfired++
		}
	}
	// ~20% of 500; just check it is neither never nor always.
	if nfired < 40 || nfired > 200 {
		t.Fatalf("rate 0.2 fired %d/500 times", nfired)
	}
}

func TestSeedChangesPattern(t *testing.T) {
	mk := func(seed uint64) []bool {
		in := New(Config{Seed: seed, Rates: rates(PoolRead, 0.3), TransientAttempts: -1})
		out := make([]bool, 200)
		for pn := range out {
			out[pn] = in.ReadFault("tbl", uint32(pn)) != nil
		}
		return out
	}
	a, b := mk(1), mk(2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("two seeds produced the identical fault pattern")
	}
}

func TestOrderIndependentUnderConcurrency(t *testing.T) {
	cfg := Config{Seed: 99, Rates: rates(StriderTrap, 0.25), TransientAttempts: -1}
	serial := New(cfg)
	want := make(map[int]bool)
	for pn := 0; pn < 400; pn++ {
		want[pn] = serial.TrapFault(pn%4, pn) != nil
	}
	conc := New(cfg)
	got := make([]bool, 400)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for pn := w; pn < 400; pn += 8 {
				got[pn] = conc.TrapFault(pn%4, pn) != nil
			}
		}(w)
	}
	wg.Wait()
	for pn := 0; pn < 400; pn++ {
		if got[pn] != want[pn] {
			t.Fatalf("page %d: serial fired=%v, concurrent fired=%v", pn, want[pn], got[pn])
		}
	}
}

func TestTransientClearsAfterAttempts(t *testing.T) {
	in := New(Config{Seed: 3, Rates: rates(PoolRead, 1), TransientAttempts: 2})
	if err := in.ReadFault("t", 9); !errors.Is(err, ErrIOTransient) {
		t.Fatalf("attempt 1: got %v, want ErrIOTransient", err)
	}
	if err := in.ReadFault("t", 9); !errors.Is(err, ErrIOTransient) {
		t.Fatalf("attempt 2: got %v, want ErrIOTransient", err)
	}
	if err := in.ReadFault("t", 9); err != nil {
		t.Fatalf("attempt 3 should have cleared, got %v", err)
	}
	if got := in.Count(PoolRead); got != 2 {
		t.Fatalf("count %d, want 2", got)
	}
	// A different page has its own attempt budget.
	if err := in.ReadFault("t", 10); !errors.Is(err, ErrIOTransient) {
		t.Fatalf("independent page: got %v", err)
	}
}

func TestPersistentNeverClears(t *testing.T) {
	in := New(Config{Seed: 3, Rates: rates(PoolRead, 1), TransientAttempts: -1})
	for i := 0; i < 10; i++ {
		if err := in.ReadFault("t", 0); !errors.Is(err, ErrIOTransient) {
			t.Fatalf("attempt %d: got %v, want persistent ErrIOTransient", i, err)
		}
	}
}

func TestResetRestoresAttemptBudget(t *testing.T) {
	in := New(Config{Seed: 3, Rates: rates(StriderTrap, 1), TransientAttempts: 1})
	if err := in.TrapFault(0, 5); !errors.Is(err, ErrVMTrap) {
		t.Fatalf("got %v, want ErrVMTrap", err)
	}
	if err := in.TrapFault(0, 5); err != nil {
		t.Fatalf("cleared fault refired: %v", err)
	}
	in.Reset()
	if err := in.TrapFault(0, 5); !errors.Is(err, ErrVMTrap) {
		t.Fatalf("after Reset: got %v, want ErrVMTrap again", err)
	}
}

func TestCorruptCopyAltersOnlyTheCopy(t *testing.T) {
	in := New(Config{Seed: 11, Rates: rates(PageTear, 1)})
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i)
	}
	buf := append([]byte(nil), src...)
	if !in.CorruptCopy("t", 3, buf) {
		t.Fatal("rate-1 tear did not fire")
	}
	same := true
	for i := range buf {
		if buf[i] != src[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("CorruptCopy fired but left the buffer intact")
	}
}

func TestCorruptCopyBitFlip(t *testing.T) {
	in := New(Config{Seed: 11, Rates: rates(PageBitFlip, 1)})
	buf := make([]byte, 64)
	if !in.CorruptCopy("t", 0, buf) {
		t.Fatal("rate-1 bit flip did not fire")
	}
	flipped := 0
	for _, b := range buf {
		for ; b != 0; b &= b - 1 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Fatalf("bit flip changed %d bits, want exactly 1", flipped)
	}
}

func TestClusterFaultTyping(t *testing.T) {
	down := New(Config{Seed: 1, Rates: rates(ClusterDown, 1)})
	if err := down.ClusterFault(0); !errors.Is(err, ErrClusterDown) {
		t.Fatalf("got %v, want ErrClusterDown", err)
	}
	stall := New(Config{Seed: 1, Rates: rates(ClusterStall, 1), StallDuration: time.Microsecond})
	if err := stall.ClusterFault(0); !errors.Is(err, ErrClusterStall) {
		t.Fatalf("got %v, want ErrClusterStall", err)
	}
}

func TestIsAcceleratorFault(t *testing.T) {
	for _, err := range []error{ErrVMTrap, ErrClusterDown, ErrClusterStall, ErrEpochTimeout, ErrWorkerQuarantined} {
		if !IsAcceleratorFault(err) {
			t.Errorf("%v should be an accelerator fault", err)
		}
	}
	for _, err := range []error{ErrTornPage, ErrIOTransient, errors.New("other")} {
		if IsAcceleratorFault(err) {
			t.Errorf("%v should NOT be an accelerator fault", err)
		}
	}
}

func TestBackoffSecCapped(t *testing.T) {
	base := 1e-3
	if got := BackoffSec(0, base); got != base {
		t.Fatalf("attempt 0: %v, want %v", got, base)
	}
	if got := BackoffSec(1, base); got != 2*base {
		t.Fatalf("attempt 1: %v, want %v", got, 2*base)
	}
	if got := BackoffSec(50, base); got != 32*base {
		t.Fatalf("attempt 50: %v, want capped %v", got, 32*base)
	}
	if got := BackoffSec(2, 0); got <= 0 {
		t.Fatalf("zero base must fall back to a positive default, got %v", got)
	}
}

func TestPointString(t *testing.T) {
	seen := map[string]bool{}
	for p := Point(0); int(p) < NumPoints; p++ {
		s := p.String()
		if s == "" || seen[s] {
			t.Fatalf("point %d has empty or duplicate name %q", p, s)
		}
		seen[s] = true
	}
}
