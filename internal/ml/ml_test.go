package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func genLinear(n, nf int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	truth := make([]float64, nf)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	tuples := make([][]float64, n)
	for i := range tuples {
		t := make([]float64, nf+1)
		s := 0.0
		for j := 0; j < nf; j++ {
			t[j] = rng.NormFloat64()
			s += truth[j] * t[j]
		}
		t[nf] = s
		tuples[i] = t
	}
	return tuples, truth
}

func TestLinearConvergesToTruth(t *testing.T) {
	tuples, truth := genLinear(512, 8, 1)
	a := Linear{NFeatures: 8, LR: 0.05}
	model := InitModel(a, 0)
	if err := TrainSGD(a, model, tuples, 30); err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(model[i]-truth[i]) > 1e-3 {
			t.Errorf("w[%d] = %v, want %v", i, model[i], truth[i])
		}
	}
	if MeanLoss(a, model, tuples) > 1e-5 {
		t.Errorf("loss = %v", MeanLoss(a, model, tuples))
	}
}

func TestLogisticSeparatesClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const nf = 6
	truth := make([]float64, nf)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	tuples := make([][]float64, 800)
	for i := range tuples {
		x := make([]float64, nf+1)
		s := 0.0
		for j := 0; j < nf; j++ {
			x[j] = rng.NormFloat64()
			s += truth[j] * x[j]
		}
		if s > 0 {
			x[nf] = 1
		}
		tuples[i] = x
	}
	a := Logistic{NFeatures: nf, LR: 0.2}
	model := InitModel(a, 0)
	if err := TrainSGD(a, model, tuples, 20); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, x := range tuples {
		p := Sigmoid(dot(model, x, nf))
		if (p > 0.5) == (x[nf] == 1) {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(tuples)); acc < 0.97 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestSVMSeparatesClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const nf = 6
	truth := make([]float64, nf)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	tuples := make([][]float64, 800)
	for i := range tuples {
		x := make([]float64, nf+1)
		s := 0.0
		for j := 0; j < nf; j++ {
			x[j] = rng.NormFloat64()
			s += truth[j] * x[j]
		}
		if s >= 0 {
			x[nf] = 1
		} else {
			x[nf] = -1
		}
		tuples[i] = x
	}
	a := SVM{NFeatures: nf, LR: 0.05, Lambda: 0.001}
	model := InitModel(a, 0)
	if err := TrainSGD(a, model, tuples, 20); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, x := range tuples {
		m := dot(model, x, nf)
		if (m >= 0) == (x[nf] == 1) {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(tuples)); acc < 0.95 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestLRMFReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const users, items, rank = 30, 40, 4
	truthU := make([]float64, users*rank)
	truthV := make([]float64, items*rank)
	for i := range truthU {
		truthU[i] = rng.Float64()
	}
	for i := range truthV {
		truthV[i] = rng.Float64()
	}
	tuples := make([][]float64, 2000)
	for i := range tuples {
		u, v := rng.Intn(users), rng.Intn(items)
		r := 0.0
		for k := 0; k < rank; k++ {
			r += truthU[u*rank+k] * truthV[v*rank+k]
		}
		tuples[i] = []float64{float64(u), float64(users + v), r}
	}
	a := LRMF{Users: users, Items: items, Rank: rank, LR: 0.05}
	model := InitModel(a, 7)
	before := MeanLoss(a, model, tuples)
	if err := TrainSGD(a, model, tuples, 30); err != nil {
		t.Fatal(err)
	}
	after := MeanLoss(a, model, tuples)
	if after > before/20 {
		t.Errorf("loss %v -> %v: insufficient improvement", before, after)
	}
}

func TestTrainSGDSizeCheck(t *testing.T) {
	a := Linear{NFeatures: 3, LR: 0.1}
	if err := TrainSGD(a, make([]float64, 2), nil, 1); err == nil {
		t.Error("wrong model size accepted")
	}
}

func TestAverageModels(t *testing.T) {
	got := AverageModels([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if got[0] != 3 || got[1] != 4 {
		t.Errorf("avg = %v", got)
	}
	if AverageModels(nil) != nil {
		t.Error("empty average should be nil")
	}
}

func TestFlopsPositive(t *testing.T) {
	algos := []Algorithm{
		Linear{NFeatures: 10, LR: 0.1},
		Logistic{NFeatures: 10, LR: 0.1},
		SVM{NFeatures: 10, LR: 0.1, Lambda: 0.01},
		LRMF{Users: 5, Items: 5, Rank: 4, LR: 0.1},
	}
	for _, a := range algos {
		if a.FlopsPerUpdate() <= 0 || a.ModelSize() <= 0 || a.TupleWidth() <= 0 {
			t.Errorf("%s: bad metadata", a.Name())
		}
	}
}

// Property: the SVM update with margin >= 1 is pure weight decay.
func TestSVMDecayProperty(t *testing.T) {
	a := SVM{NFeatures: 4, LR: 0.1, Lambda: 0.5}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		model := make([]float64, 4)
		for i := range model {
			model[i] = rng.NormFloat64()
		}
		// Construct a tuple with a huge positive margin.
		tuple := make([]float64, 5)
		for i := 0; i < 4; i++ {
			tuple[i] = model[i] * 100
		}
		tuple[4] = 1
		before := append([]float64(nil), model...)
		a.Update(model, tuple)
		for i := range model {
			want := before[i] * (1 - a.LR*a.Lambda)
			if math.Abs(model[i]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
