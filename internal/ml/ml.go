// Package ml provides float64 reference implementations of the paper's
// four workload algorithms — linear regression, logistic regression,
// SVM (hinge loss), and low-rank matrix factorization — as incremental
// gradient (IGD) updates. These are the compute kernels of the MADlib
// and Greenplum baselines and the golden models for accelerator tests.
package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// Algorithm is one trainable model with an IGD per-tuple update, in the
// Bismarck/MADlib style the paper benchmarks against.
type Algorithm interface {
	Name() string
	// ModelSize is the number of float64 parameters.
	ModelSize() int
	// TupleWidth is the number of values per training tuple.
	TupleWidth() int
	// Update applies one incremental gradient step for the tuple.
	Update(model, tuple []float64)
	// Loss returns the tuple's loss under the model.
	Loss(model, tuple []float64) float64
	// FlopsPerUpdate approximates floating-point operations per Update,
	// used by the CPU cost model.
	FlopsPerUpdate() int
}

// dot computes w[:n] · x[:n].
func dot(w, x []float64, n int) float64 {
	s := 0.0
	for i := 0; i < n; i++ {
		s += w[i] * x[i]
	}
	return s
}

// Linear is least-squares linear regression.
type Linear struct {
	NFeatures int
	LR        float64
}

func (l Linear) Name() string    { return "linear" }
func (l Linear) ModelSize() int  { return l.NFeatures }
func (l Linear) TupleWidth() int { return l.NFeatures + 1 }

func (l Linear) Update(model, tuple []float64) {
	e := dot(model, tuple, l.NFeatures) - tuple[l.NFeatures]
	for i := 0; i < l.NFeatures; i++ {
		model[i] -= l.LR * e * tuple[i]
	}
}

func (l Linear) Loss(model, tuple []float64) float64 {
	e := dot(model, tuple, l.NFeatures) - tuple[l.NFeatures]
	return 0.5 * e * e
}

func (l Linear) FlopsPerUpdate() int { return 4 * l.NFeatures }

// Logistic is binary logistic regression with labels in {0, 1}.
type Logistic struct {
	NFeatures int
	LR        float64
}

func (l Logistic) Name() string    { return "logistic" }
func (l Logistic) ModelSize() int  { return l.NFeatures }
func (l Logistic) TupleWidth() int { return l.NFeatures + 1 }

// Sigmoid is the logistic function.
func Sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func (l Logistic) Update(model, tuple []float64) {
	p := Sigmoid(dot(model, tuple, l.NFeatures))
	e := p - tuple[l.NFeatures]
	for i := 0; i < l.NFeatures; i++ {
		model[i] -= l.LR * e * tuple[i]
	}
}

func (l Logistic) Loss(model, tuple []float64) float64 {
	p := Sigmoid(dot(model, tuple, l.NFeatures))
	y := tuple[l.NFeatures]
	const eps = 1e-12
	return -(y*math.Log(p+eps) + (1-y)*math.Log(1-p+eps))
}

func (l Logistic) FlopsPerUpdate() int { return 4*l.NFeatures + 8 }

// SVM is a linear SVM trained on the L2-regularized hinge loss with
// labels in {-1, +1}.
type SVM struct {
	NFeatures int
	LR        float64
	Lambda    float64
}

func (s SVM) Name() string    { return "svm" }
func (s SVM) ModelSize() int  { return s.NFeatures }
func (s SVM) TupleWidth() int { return s.NFeatures + 1 }

func (s SVM) Update(model, tuple []float64) {
	y := tuple[s.NFeatures]
	margin := y * dot(model, tuple, s.NFeatures)
	for i := 0; i < s.NFeatures; i++ {
		g := s.Lambda * model[i]
		if margin < 1 {
			g -= y * tuple[i]
		}
		model[i] -= s.LR * g
	}
}

func (s SVM) Loss(model, tuple []float64) float64 {
	y := tuple[s.NFeatures]
	margin := y * dot(model, tuple, s.NFeatures)
	loss := 0.0
	if margin < 1 {
		loss = 1 - margin
	}
	reg := 0.0
	for i := 0; i < s.NFeatures; i++ {
		reg += model[i] * model[i]
	}
	return loss + 0.5*s.Lambda*reg
}

func (s SVM) FlopsPerUpdate() int { return 6 * s.NFeatures }

// LRMF is low-rank matrix factorization: the model stacks the user
// factor matrix (Users x Rank) above the item factor matrix
// (Items x Rank); a tuple is (userRow, itemRow, rating), where itemRow
// already includes the Users offset.
type LRMF struct {
	Users, Items, Rank int
	LR                 float64
}

func (m LRMF) Name() string    { return "lrmf" }
func (m LRMF) ModelSize() int  { return (m.Users + m.Items) * m.Rank }
func (m LRMF) TupleWidth() int { return 3 }

func (m LRMF) rowOf(model []float64, idx int) []float64 {
	return model[idx*m.Rank : (idx+1)*m.Rank]
}

func (m LRMF) Update(model, tuple []float64) {
	u := m.rowOf(model, int(tuple[0]))
	v := m.rowOf(model, int(tuple[1]))
	e := dot(u, v, m.Rank) - tuple[2]
	for i := 0; i < m.Rank; i++ {
		ui, vi := u[i], v[i]
		u[i] = ui - m.LR*e*vi
		v[i] = vi - m.LR*e*ui
	}
}

func (m LRMF) Loss(model, tuple []float64) float64 {
	u := m.rowOf(model, int(tuple[0]))
	v := m.rowOf(model, int(tuple[1]))
	e := dot(u, v, m.Rank) - tuple[2]
	return 0.5 * e * e
}

func (m LRMF) FlopsPerUpdate() int { return 8 * m.Rank }

// InitModel returns a small random initialization appropriate for the
// algorithm (zeros for GLMs, scaled uniform for LRMF).
func InitModel(a Algorithm, seed int64) []float64 {
	model := make([]float64, a.ModelSize())
	if _, ok := a.(LRMF); ok {
		rng := rand.New(rand.NewSource(seed))
		for i := range model {
			model[i] = 0.2 * rng.Float64()
		}
	}
	return model
}

// TrainSGD runs plain IGD: one pass per epoch, one update per tuple.
func TrainSGD(a Algorithm, model []float64, tuples [][]float64, epochs int) error {
	if len(model) != a.ModelSize() {
		return fmt.Errorf("ml: model size %d, want %d", len(model), a.ModelSize())
	}
	for e := 0; e < epochs; e++ {
		for _, t := range tuples {
			a.Update(model, t)
		}
	}
	return nil
}

// MeanLoss averages the loss over the tuples.
func MeanLoss(a Algorithm, model []float64, tuples [][]float64) float64 {
	if len(tuples) == 0 {
		return 0
	}
	s := 0.0
	for _, t := range tuples {
		s += a.Loss(model, t)
	}
	return s / float64(len(tuples))
}

// AverageModels averages k models elementwise (model-averaging merge,
// used by the Greenplum-style segmented baseline).
func AverageModels(models [][]float64) []float64 {
	if len(models) == 0 {
		return nil
	}
	out := make([]float64, len(models[0]))
	for _, m := range models {
		for i, v := range m {
			out[i] += v
		}
	}
	inv := 1 / float64(len(models))
	for i := range out {
		out[i] *= inv
	}
	return out
}
