package runtime

import (
	"errors"
	"math"
	"testing"
	"time"

	"dana/internal/fault"
	"dana/internal/obs"
	"dana/internal/verify"
)

// rate builds a Rates array with one injection point set.
func rate(p fault.Point, r float64) [fault.NumPoints]float64 {
	var rs [fault.NumPoints]float64
	rs[p] = r
	return rs
}

// tolCompare checks the degraded model against the fault-free baseline
// at Oracle-C tolerance: the CPU fallback runs the same update rule in
// float64, so the result must track the accelerator's float32 run.
func tolCompare(t *testing.T, what string, got, want []float32, tol float64) {
	t.Helper()
	a := make([]float64, len(got))
	b := make([]float64, len(want))
	for i := range got {
		a[i] = float64(got[i])
	}
	for i := range want {
		b[i] = float64(want[i])
	}
	if err := verify.CompareModels(what, a, b, tol); err != nil {
		t.Error(err)
	}
}

// obsCount reads a named counter off the system registry.
func obsCount(t *testing.T, s *System, name string) int64 {
	t.Helper()
	return s.Obs().Get(name)
}

const (
	ftWorkload  = "Remote Sensing LR"
	ftScale     = 0.002
	ftMergeCoef = 16
	ftEpochs    = 3
)

// ftSystem builds a system with the workload deployed and UDF
// registered, ready to Train.
func ftSystem(t *testing.T, mods ...func(*Options)) (*System, string, string) {
	t.Helper()
	opts := DefaultOptions()
	opts.PageSize = 8 << 10
	opts.PoolBytes = 32 << 20
	opts.MaxEpochs = ftEpochs
	opts.Workers = 4
	for _, mod := range mods {
		mod(&opts)
	}
	s := New(opts)
	d := deployScaled(t, s, ftWorkload, ftScale)
	a, err := d.DSLAlgo(ftMergeCoef)
	if err != nil {
		t.Fatal(err)
	}
	a.SetEpochs(ftEpochs)
	if _, err := s.Register(a, ftMergeCoef, d.Tuples); err != nil {
		t.Fatal(err)
	}
	return s, a.Name, d.Rel.Name
}

// TestTransientTrapRecoversBitIdentical: a low-rate transient Strider
// trap is absorbed by the same-VM page retry, so the run completes
// undegraded with a model bit-identical to the fault-free baseline.
func TestTransientTrapRecoversBitIdentical(t *testing.T) {
	baseline := trainConfigured(t, ftWorkload, ftScale, ftMergeCoef, ftEpochs, 4, false)

	s, udf, table := ftSystem(t, func(o *Options) {
		o.Faults = fault.New(fault.Config{
			Seed:              11,
			Rates:             rate(fault.StriderTrap, 0.05),
			TransientAttempts: 1,
		})
	})
	res, err := s.Train(udf, table)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatal("transient traps should not degrade the run")
	}
	if got := obsCount(t, s, obs.RuntimePageRetries); got == 0 {
		t.Error("no page retries recorded; the trap-retry path never fired")
	}
	if s.Pool().PinnedCount() != 0 {
		t.Error("leaked page pins")
	}
	if len(res.Model) != len(baseline.Model) {
		t.Fatalf("model size %d != baseline %d", len(res.Model), len(baseline.Model))
	}
	for i := range res.Model {
		if math.Float32bits(res.Model[i]) != math.Float32bits(baseline.Model[i]) {
			t.Fatalf("model[%d] = %v != baseline %v (recovered run must be bit-identical)",
				i, res.Model[i], baseline.Model[i])
		}
	}
}

// TestPersistentTrapQuarantinesWorker: a persistent trap follows the
// (strider, page) pair, so the page-retry budget exhausts, the VM is
// quarantined, and the epoch re-runs on the healthy subset — the run
// still completes with a bit-identical model.
func TestPersistentTrapQuarantinesWorker(t *testing.T) {
	baseline := trainConfigured(t, ftWorkload, ftScale, ftMergeCoef, ftEpochs, 4, false)

	s, udf, table := ftSystem(t, func(o *Options) {
		o.Faults = fault.New(fault.Config{
			Seed:              23,
			Rates:             rate(fault.StriderTrap, 0.02),
			TransientAttempts: -1, // persistent: retries never clear it
		})
	})
	res, err := s.Train(udf, table)
	if err != nil {
		t.Fatal(err)
	}
	if got := obsCount(t, s, obs.RuntimeQuarantines); got == 0 {
		t.Error("no quarantines recorded; pick a seed/rate that traps at least one (vm, page) pair")
	}
	if got := obsCount(t, s, obs.RuntimeEpochRetries); got == 0 {
		t.Error("no epoch retries recorded")
	}
	if s.Pool().PinnedCount() != 0 {
		t.Error("leaked page pins")
	}
	if res.Degraded {
		// All VMs quarantined instead — legal at a high rate, but at 2%
		// the healthy subset should survive.
		t.Fatal("quarantine recovery should complete without degradation at this rate")
	}
	for i := range res.Model {
		if math.Float32bits(res.Model[i]) != math.Float32bits(baseline.Model[i]) {
			t.Fatalf("model[%d] = %v != baseline %v (recovered run must be bit-identical)",
				i, res.Model[i], baseline.Model[i])
		}
	}
}

// TestAllWorkersQuarantinedFallsBackToCPU: with every (strider, page)
// walk trapping persistently, quarantine drains the whole pool and the
// run degrades to the golden CPU trainer — same update rule, so the
// model lands within Oracle-C tolerance of the fault-free baseline.
func TestAllWorkersQuarantinedFallsBackToCPU(t *testing.T) {
	baseline := trainConfigured(t, ftWorkload, ftScale, ftMergeCoef, ftEpochs, 4, false)

	mkFaults := func(o *Options) {
		o.Faults = fault.New(fault.Config{
			Seed:              5,
			Rates:             rate(fault.StriderTrap, 1.0),
			TransientAttempts: -1,
		})
	}
	s, udf, table := ftSystem(t, mkFaults)
	res, err := s.Train(udf, table)
	if err != nil {
		t.Fatalf("graceful degradation must not surface an error: %v", err)
	}
	if !res.Degraded || res.DegradedAtEpoch != 0 {
		t.Fatalf("want Degraded at epoch 0, got %+v", res)
	}
	if got := obsCount(t, s, obs.RuntimeCPUFallbacks); got != 1 {
		t.Errorf("cpu_fallbacks = %d, want 1", got)
	}
	if got := obsCount(t, s, obs.RuntimeQuarantines); got == 0 {
		t.Error("no quarantines recorded before fallback")
	}
	if res.Epochs != ftEpochs {
		t.Errorf("degraded run trained %d epochs, want the full budget %d", res.Epochs, ftEpochs)
	}
	if s.Pool().PinnedCount() != 0 {
		t.Error("leaked page pins")
	}
	tolCompare(t, "cpu fallback", res.Model, baseline.Model, 1e-2)

	// Mutation meta-test: disabling the fallback must flip the outcome
	// to a clean typed failure, proving the fallback path is what saved
	// the run above.
	s2, udf2, table2 := ftSystem(t, mkFaults, func(o *Options) { o.DisableCPUFallback = true })
	_, err = s2.Train(udf2, table2)
	if !errors.Is(err, fault.ErrWorkerQuarantined) {
		t.Fatalf("DisableCPUFallback: got %v, want ErrWorkerQuarantined", err)
	}
	if !errors.Is(err, fault.ErrVMTrap) {
		t.Errorf("quarantine error should also wrap the underlying VM trap, got %v", err)
	}
	if s2.Pool().PinnedCount() != 0 {
		t.Error("failed run leaked page pins")
	}
	// The system stays usable after a clean failure: detach faults and
	// train again.
	s2.Opts.Faults = nil
	s2.DB.Pool.SetFaults(nil)
	res2, err := s2.Train(udf2, table2)
	if err != nil {
		t.Fatalf("system unusable after clean failure: %v", err)
	}
	if res2.Degraded {
		t.Error("fault-free retrain should not be degraded")
	}
}

// TestEpochTimeoutDegradesToCPU: an immediately-expired epoch budget
// surfaces ErrEpochTimeout, which counts as an accelerator fault and
// degrades the run to the CPU from epoch 0.
func TestEpochTimeoutDegradesToCPU(t *testing.T) {
	baseline := trainConfigured(t, ftWorkload, ftScale, ftMergeCoef, ftEpochs, 4, false)

	s, udf, table := ftSystem(t, func(o *Options) { o.EpochTimeout = time.Nanosecond })
	res, err := s.Train(udf, table)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.DegradedAtEpoch != 0 {
		t.Fatalf("want Degraded at epoch 0, got %+v", res)
	}
	if got := obsCount(t, s, obs.RuntimeEpochTimeout); got == 0 {
		t.Error("no epoch timeouts recorded")
	}
	if s.Pool().PinnedCount() != 0 {
		t.Error("leaked page pins")
	}
	tolCompare(t, "timeout fallback", res.Model, baseline.Model, 1e-2)

	s2, udf2, table2 := ftSystem(t,
		func(o *Options) { o.EpochTimeout = time.Nanosecond },
		func(o *Options) { o.DisableCPUFallback = true })
	_, err = s2.Train(udf2, table2)
	if !errors.Is(err, fault.ErrEpochTimeout) {
		t.Fatalf("DisableCPUFallback: got %v, want ErrEpochTimeout", err)
	}
	if s2.Pool().PinnedCount() != 0 {
		t.Error("failed run leaked page pins")
	}
}

// TestClusterDownDegradesToCPU: an analytic-cluster failure before the
// first epoch degrades the whole run to the CPU path.
func TestClusterDownDegradesToCPU(t *testing.T) {
	baseline := trainConfigured(t, ftWorkload, ftScale, ftMergeCoef, ftEpochs, 4, false)

	mkFaults := func(o *Options) {
		o.Faults = fault.New(fault.Config{Seed: 3, Rates: rate(fault.ClusterDown, 1.0)})
	}
	s, udf, table := ftSystem(t, mkFaults)
	res, err := s.Train(udf, table)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.DegradedAtEpoch != 0 {
		t.Fatalf("want Degraded at epoch 0, got %+v", res)
	}
	tolCompare(t, "cluster-down fallback", res.Model, baseline.Model, 1e-2)

	s2, udf2, table2 := ftSystem(t, mkFaults, func(o *Options) { o.DisableCPUFallback = true })
	_, err = s2.Train(udf2, table2)
	if !errors.Is(err, fault.ErrClusterDown) {
		t.Fatalf("DisableCPUFallback: got %v, want ErrClusterDown", err)
	}
}

// TestStorageFaultIsNotDegradable: persistent disk-read failure is not
// an accelerator fault — the CPU cannot read the table either, so the
// run must fail with the typed I/O error instead of degrading.
func TestStorageFaultIsNotDegradable(t *testing.T) {
	s, udf, table := ftSystem(t, func(o *Options) {
		o.Faults = fault.New(fault.Config{
			Seed:              9,
			Rates:             rate(fault.PoolRead, 1.0),
			TransientAttempts: -1,
		})
	})
	// The injected read faults begin once the deployed pages age out —
	// force cold reads so the first epoch hits the disk path.
	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	_, err := s.Train(udf, table)
	if err == nil {
		t.Fatal("persistent read faults must fail the run")
	}
	if !errors.Is(err, fault.ErrIOTransient) {
		t.Fatalf("got %v, want ErrIOTransient", err)
	}
	if s.Pool().PinnedCount() != 0 {
		t.Error("failed run leaked page pins")
	}
}

// TestLatencySpikesChargeSimulatedTime: injected latency spikes slow the
// modeled I/O clock but never change the trained model.
func TestLatencySpikesChargeSimulatedTime(t *testing.T) {
	baseline := trainConfigured(t, ftWorkload, ftScale, ftMergeCoef, ftEpochs, 4, false)

	s, udf, table := ftSystem(t, func(o *Options) {
		o.Faults = fault.New(fault.Config{
			Seed:            31,
			Rates:           rate(fault.PoolLatency, 0.5),
			LatencySpikeSec: 5e-3,
		})
	})
	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Train(udf, table)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatal("latency spikes must not degrade the run")
	}
	if res.Pool.IOSeconds <= baseline.Pool.IOSeconds {
		t.Errorf("spiked IOSeconds %v not above baseline %v", res.Pool.IOSeconds, baseline.Pool.IOSeconds)
	}
	for i := range res.Model {
		if math.Float32bits(res.Model[i]) != math.Float32bits(baseline.Model[i]) {
			t.Fatalf("model[%d] changed under latency spikes", i)
		}
	}
}
