package strider

import (
	"fmt"

	"dana/internal/storage"
)

// InnoLayout describes a MySQL/InnoDB-style page (see
// storage.InnoPage): records form a singly linked list threaded
// through the page rather than PostgreSQL's line-pointer array, so the
// generated program is pure pointer chasing — the access pattern the
// Strider ISA's branch instructions exist for (§5.1.2).
type InnoLayout struct {
	PageSize         int
	CountOffset      int // record-count field offset
	FirstOffset      int // first-record-pointer field offset
	RecordHeaderSize int // bytes to strip before the payload
	NextPtrOffset    int // next-pointer offset within the record header
	PayloadWidth     int // fixed payload bytes per record (schema width)
}

// InnoDBLayout returns the layout of storage.InnoPage pages for a
// schema.
func InnoDBLayout(pageSize int, schema *storage.Schema) InnoLayout {
	return InnoLayout{
		PageSize:         pageSize,
		CountOffset:      38,
		FirstOffset:      42,
		RecordHeaderSize: storage.InnoRecordHeaderSize,
		NextPtrOffset:    3,
		PayloadWidth:     schema.DataWidth(),
	}
}

// GenerateInnoDB emits the Strider program and configuration that walk
// an InnoDB-style record chain and emit every payload. The payload
// width exceeds the 5-bit immediate range for real schemas, so it is
// pre-loaded into %cr3 through the configuration channel, as the
// compiler does for all page metadata (§6.2).
//
// Like the PostgreSQL walker, the loop is a do-while: pages hold at
// least one record (guaranteed by the storage layer's bulk loader).
func GenerateInnoDB(layout InnoLayout) ([]Instr, Config, error) {
	if layout.RecordHeaderSize > operandImmMax || layout.NextPtrOffset > operandImmMax {
		return nil, Config{}, fmt.Errorf("strider: record header geometry exceeds immediate range")
	}
	var cfg Config
	cfg.CR[3] = uint64(layout.PayloadWidth)
	// Header field offsets exceed the 5-bit immediate range, so they
	// are pre-loaded constants too.
	cfg.CR[4] = uint64(layout.CountOffset)
	cfg.CR[5] = uint64(layout.FirstOffset)

	src := fmt.Sprintf(`
\\ Page header processing
readB %%cr4, 2, %%cr0       \\ record count
readB %%cr5, 2, %%t0        \\ offset of the first user record
\\ Record chain walk
bentr
cln %%t0, %d, %%cr3         \\ emit the payload (strip the record header)
ad %%t0, %d, %%t1           \\ address of the next-record pointer
readB %%t1, 2, %%t0         \\ chase the pointer
bexit 0, %%t0, 0            \\ end of chain (next == 0)
`,
		layout.RecordHeaderSize, layout.NextPtrOffset)
	prog, err := Assemble(src)
	if err != nil {
		return nil, Config{}, fmt.Errorf("strider: generated InnoDB program failed to assemble: %w", err)
	}
	if err := verifyGenerated(prog, cfg, layout.PageSize); err != nil {
		return nil, Config{}, err
	}
	return prog, cfg, nil
}
