package madlib_test

import (
	"testing"

	"dana/internal/algos"
	"dana/internal/bufpool"
	"dana/internal/madlib"
	"dana/internal/ml"
	"dana/internal/storage"
	"dana/internal/verify"
)

// These crosschecks tie the MADlib baseline into the differential
// verification hierarchy: the model that comes out of a heap scan
// through the buffer pool must match ml.TrainSGD bit-for-bit (same
// update code, storage must not perturb values) and the pure golden
// trainer within float round-off.

// relationFor writes the tuples into a fresh heap relation attached to
// a fresh buffer pool. Values are float32-quantized by the generator so
// the float4 on-disk columns round-trip exactly.
func relationFor(t *testing.T, sp verify.GoldenSpec, tuples [][]float64, pageSize int) (*bufpool.Pool, *storage.Relation) {
	t.Helper()
	var schema *storage.Schema
	if sp.Kind == algos.KindLRMF {
		schema = storage.RatingSchema()
	} else {
		schema = storage.NumericSchema(sp.NFeat)
	}
	rel := storage.NewRelation("xcheck", schema, pageSize)
	if err := rel.InsertBatch(tuples); err != nil {
		t.Fatal(err)
	}
	pool := bufpool.New(64, pageSize, bufpool.DefaultDisk())
	if err := pool.AttachRelation(rel); err != nil {
		t.Fatal(err)
	}
	return pool, rel
}

// TestMADlibMatchesGoldenTrainer runs the MADlib trainer over every GLM
// kind and LRMF and compares against (a) ml.TrainSGD from the same init
// — bit-identical, proving the storage/bufpool path is value-preserving
// — and (b) the verify golden trainer within 1e-9.
func TestMADlibMatchesGoldenTrainer(t *testing.T) {
	cases := []struct {
		name string
		sp   verify.GoldenSpec
	}{
		{"linear", verify.GoldenSpec{Kind: algos.KindLinear, NFeat: 6, LR: 0.05, Epochs: 3, MergeCoef: 1}},
		{"logistic", verify.GoldenSpec{Kind: algos.KindLogistic, NFeat: 4, LR: 0.1, Epochs: 3, MergeCoef: 1}},
		{"svm", verify.GoldenSpec{Kind: algos.KindSVM, NFeat: 8, LR: 0.05, Lambda: 0.01, Epochs: 2, MergeCoef: 1}},
		{"lrmf", verify.GoldenSpec{Kind: algos.KindLRMF, Users: 5, Items: 4, Rank: 2, LR: 0.05, Epochs: 2, MergeCoef: 1}},
	}
	for ci, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := verify.NewGen(int64(0xBA5E + ci))
			tuples := verify.TrainingTuples(g, tc.sp, 40)
			pool, rel := relationFor(t, tc.sp, tuples, storage.PageSize8K)
			algo := tc.sp.Algorithm()

			tr, err := madlib.New(pool, rel, algo)
			if err != nil {
				t.Fatal(err)
			}
			got, st, err := tr.Train(tc.sp.Epochs)
			if err != nil {
				t.Fatal(err)
			}
			if want := int64(len(tuples) * tc.sp.Epochs); st.Tuples != want {
				t.Errorf("trained on %d tuple updates, want %d", st.Tuples, want)
			}

			// Leg 1: same init, same update code, but fed from decoded
			// heap tuples — must be bit-identical to in-memory SGD.
			ref := ml.InitModel(algo, 1)
			if err := ml.TrainSGD(algo, ref, tuples, tc.sp.Epochs); err != nil {
				t.Fatal(err)
			}
			if err := verify.CompareModels("madlib vs ml.TrainSGD", got, ref, 0); err != nil {
				t.Error(err)
			}

			// Leg 2: the independent golden trainer, 1e-9 for FP op-order
			// differences.
			golden := ml.InitModel(algo, 1)
			if err := tc.sp.Train(golden, tuples); err != nil {
				t.Fatal(err)
			}
			if err := verify.CompareModels("madlib vs golden", got, golden, 1e-9); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestMADlibCrosscheckDetectsTamper is the meta-test for this file: a
// perturbed model must trip the bit-exact comparator.
func TestMADlibCrosscheckDetectsTamper(t *testing.T) {
	sp := verify.GoldenSpec{Kind: algos.KindLinear, NFeat: 4, LR: 0.05, Epochs: 2, MergeCoef: 1}
	g := verify.NewGen(0xBA5E)
	tuples := verify.TrainingTuples(g, sp, 30)
	pool, rel := relationFor(t, sp, tuples, storage.PageSize8K)
	tr, err := madlib.New(pool, rel, sp.Algorithm())
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := tr.Train(sp.Epochs)
	if err != nil {
		t.Fatal(err)
	}
	tampered := append([]float64(nil), got...)
	tampered[0] += 1e-12
	if err := verify.CompareModels("meta", got, tampered, 0); err == nil {
		t.Fatal("bit-exact comparator accepted a perturbed model")
	}
}
