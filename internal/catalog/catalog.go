// Package catalog implements the RDBMS system catalog. Besides table
// schemas it stores DAnA's accelerator metadata — the compiled Strider
// and execution-engine binaries, schedules, and the chosen hardware
// design — exactly as Figure 2 shows the catalog shared between the
// database engine and the FPGA.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dana/internal/dsl"
	"dana/internal/engine"
	"dana/internal/hdfg"
	"dana/internal/hwgen"
	"dana/internal/storage"
	"dana/internal/strider"
)

// UDF is a registered analytics function: the DSL source-of-truth plus
// its translated graph.
type UDF struct {
	Name  string
	Algo  *dsl.Algo
	Graph *hdfg.Graph
}

// Accelerator is the catalog record DAnA stores for a UDF after
// compilation and hardware generation (paper §6.2: "The FPGA design,
// its schedule, operation map, and instructions are then stored in the
// RDBMS catalog").
type Accelerator struct {
	UDFName     string
	Program     *engine.Program
	StriderProg []strider.Instr
	StriderCfg  strider.Config
	Design      hwgen.Design

	// OperationMap is the rendered per-step placement of the per-tuple
	// schedule (paper §6.2: "The FPGA design, its schedule, operation
	// map, and instructions are then stored in the RDBMS catalog").
	OperationMap string
	// ScheduledCycles is the list scheduler's per-tuple makespan.
	ScheduledCycles int64
}

// key normalizes catalog names: SQL identifiers fold to lower case.
func key(name string) string { return strings.ToLower(name) }

// Catalog holds tables, UDFs, and accelerator metadata.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*storage.Relation
	udfs   map[string]*UDF
	accels map[string]*Accelerator
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: make(map[string]*storage.Relation),
		udfs:   make(map[string]*UDF),
		accels: make(map[string]*Accelerator),
	}
}

// CreateTable registers a new heap relation.
func (c *Catalog) CreateTable(name string, schema *storage.Schema, pageSize int) (*storage.Relation, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key(name)]; ok {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	r := storage.NewRelation(name, schema, pageSize)
	c.tables[key(name)] = r
	return r, nil
}

// AttachTable registers an existing relation (bulk-loaded by datagen).
func (c *Catalog) AttachTable(r *storage.Relation) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key(r.Name)]; ok {
		return fmt.Errorf("catalog: table %q already exists", r.Name)
	}
	c.tables[key(r.Name)] = r
	return nil
}

// Table looks up a relation.
func (c *Catalog) Table(name string) (*storage.Relation, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.tables[key(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q does not exist", name)
	}
	return r, nil
}

// DropTable removes a relation.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key(name)]; !ok {
		return fmt.Errorf("catalog: table %q does not exist", name)
	}
	delete(c.tables, key(name))
	return nil
}

// Tables returns the sorted table names.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for _, r := range c.tables {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return names
}

// RegisterUDF translates and stores a DSL algorithm under its name.
func (c *Catalog) RegisterUDF(a *dsl.Algo) (*UDF, error) {
	g, err := hdfg.Translate(a)
	if err != nil {
		return nil, fmt.Errorf("catalog: UDF %q: %w", a.Name, err)
	}
	u := &UDF{Name: a.Name, Algo: a, Graph: g}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.udfs[key(a.Name)]; ok {
		return nil, fmt.Errorf("catalog: UDF %q already registered", a.Name)
	}
	c.udfs[key(a.Name)] = u
	return u, nil
}

// UDF looks up a registered function.
func (c *Catalog) UDF(name string) (*UDF, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	u, ok := c.udfs[key(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: UDF %q is not registered", name)
	}
	return u, nil
}

// UDFs returns the sorted UDF names.
func (c *Catalog) UDFs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.udfs))
	for _, u := range c.udfs {
		names = append(names, u.Name)
	}
	sort.Strings(names)
	return names
}

// StoreAccelerator records compiled accelerator metadata for a UDF.
func (c *Catalog) StoreAccelerator(a *Accelerator) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.udfs[key(a.UDFName)]; !ok {
		return fmt.Errorf("catalog: accelerator for unregistered UDF %q", a.UDFName)
	}
	c.accels[key(a.UDFName)] = a
	return nil
}

// Accelerator looks up accelerator metadata (nil error + nil value means
// not yet generated).
func (c *Catalog) Accelerator(udfName string) (*Accelerator, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	a, ok := c.accels[key(udfName)]
	return a, ok
}
