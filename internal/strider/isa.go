// Package strider implements DAnA's Strider ISA (paper §5.1.2, Table 2):
// 22-bit fixed-width instructions specialized for pointer chasing and
// tuple extraction from raw database pages. The package provides the
// binary encoding, a two-way assembler, an executable Strider VM, and a
// compiler that generates extraction programs from a page layout.
package strider

import (
	"fmt"
)

// Opcode values (Table 2).
type Opcode uint8

const (
	OpReadB  Opcode = 0  // readB  src, len, dst   : dst = LE-int of page[src:src+len]
	OpExtrB  Opcode = 1  // extrB  src, off, dst   : dst = byte `off` of register src
	OpWriteB Opcode = 2  // writeB src, len, addr  : page[addr:addr+len] = low bytes of src
	OpExtrBi Opcode = 3  // extrBi src, fd,  dst   : dst = bitfield fd of src (fd indexes the config field table)
	OpClean  Opcode = 4  // cln    addr, skip, len : emit page[addr+skip : addr+skip+len] to the output FIFO
	OpInsert Opcode = 5  // ins    val, len, _     : emit low `len` bytes of val to the output FIFO
	OpAdd    Opcode = 6  // ad     a, b, dst       : dst = a + b
	OpSub    Opcode = 7  // sub    a, b, dst       : dst = a - b
	OpMul    Opcode = 8  // mul    a, b, dst       : dst = a * b
	OpBentr  Opcode = 9  // bentr                  : mark loop entry
	OpBexit  Opcode = 10 // bexit  cond, a, b      : exit loop if cond(a,b), else jump to entry
)

var opcodeNames = [...]string{
	"readB", "extrB", "writeB", "extrBi", "cln", "ins", "ad", "sub", "mul", "bentr", "bexit",
}

func (o Opcode) String() string {
	if int(o) < len(opcodeNames) {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Bexit condition codes (the paper's "Condition Value" field).
const (
	CondEQ = 0 // exit if a == b
	CondGE = 1 // exit if a >= b
	CondGT = 2 // exit if a > b
	CondNE = 3 // exit if a != b
)

// Operand encoding: each 6-bit operand field selects an immediate or a
// register (DESIGN.md concretization):
//
//	 0–31: immediate value 0..31
//	32–47: temporary registers %t0–%t15
//	48–63: configuration registers %cr0–%cr15
const (
	NumTempRegs   = 16
	NumConfigRegs = 16

	operandImmMax = 31
	operandTBase  = 32
	operandCRBase = 48
)

// Operand is one decoded 6-bit operand field.
type Operand uint8

// Imm builds an immediate operand (0..31).
func Imm(v int) (Operand, error) {
	if v < 0 || v > operandImmMax {
		return 0, fmt.Errorf("strider: immediate %d out of range [0,31]", v)
	}
	return Operand(v), nil
}

// TReg builds a temporary-register operand %t{i}.
func TReg(i int) (Operand, error) {
	if i < 0 || i >= NumTempRegs {
		return 0, fmt.Errorf("strider: %%t%d out of range", i)
	}
	return Operand(operandTBase + i), nil
}

// CReg builds a configuration-register operand %cr{i}.
func CReg(i int) (Operand, error) {
	if i < 0 || i >= NumConfigRegs {
		return 0, fmt.Errorf("strider: %%cr%d out of range", i)
	}
	return Operand(operandCRBase + i), nil
}

// IsImm reports whether the operand is an immediate.
func (o Operand) IsImm() bool { return o <= operandImmMax }

// IsReg reports whether the operand names a register.
func (o Operand) IsReg() bool { return o >= operandTBase }

func (o Operand) String() string {
	switch {
	case o <= operandImmMax:
		return fmt.Sprintf("%d", int(o))
	case o < operandCRBase:
		return fmt.Sprintf("%%t%d", int(o)-operandTBase)
	default:
		return fmt.Sprintf("%%cr%d", int(o)-operandCRBase)
	}
}

// Instr is one decoded 22-bit Strider instruction. Bit layout
// (Table 2): [21:18] opcode, [17:12] op1, [11:6] op2, [5:0] op3.
type Instr struct {
	Op Opcode
	A  Operand // bits 17..12
	B  Operand // bits 11..6
	C  Operand // bits  5..0
}

// InstrBits is the number of bits in an encoded instruction.
const InstrBits = 22

// Encode packs the instruction into its 22-bit binary form.
func (i Instr) Encode() uint32 {
	return uint32(i.Op&0xF)<<18 | uint32(i.A&0x3F)<<12 | uint32(i.B&0x3F)<<6 | uint32(i.C&0x3F)
}

// Decode unpacks a 22-bit instruction word.
func Decode(w uint32) (Instr, error) {
	if w>>InstrBits != 0 {
		return Instr{}, fmt.Errorf("strider: word %#x wider than %d bits", w, InstrBits)
	}
	in := Instr{
		Op: Opcode(w >> 18 & 0xF),
		A:  Operand(w >> 12 & 0x3F),
		B:  Operand(w >> 6 & 0x3F),
		C:  Operand(w & 0x3F),
	}
	if in.Op > OpBexit {
		return Instr{}, fmt.Errorf("strider: invalid opcode %d", in.Op)
	}
	return in, nil
}

func (i Instr) String() string {
	switch i.Op {
	case OpBentr:
		return "bentr"
	case OpInsert:
		return fmt.Sprintf("%s %s, %s", i.Op, i.A, i.B)
	default:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.A, i.B, i.C)
	}
}

// FieldDesc describes one configurable bit-field for extrBi: the
// instruction's second operand indexes a table of these, pre-loaded
// through the configuration channel (Figure 5's "Insert Constants").
type FieldDesc struct {
	Start uint8 // first bit (LSB = 0)
	Width uint8 // number of bits (1..32)
}

// Extract applies the bit-field to v.
func (f FieldDesc) Extract(v uint64) uint64 {
	if f.Width == 0 || f.Width > 32 {
		return 0
	}
	return (v >> f.Start) & (1<<f.Width - 1)
}

// Config is the per-Strider configuration state loaded before execution:
// initial configuration register values and the extrBi field table.
type Config struct {
	CR     [NumConfigRegs]uint64
	Fields [NumConfigRegs]FieldDesc
}
