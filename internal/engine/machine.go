package engine

import (
	"fmt"
	"math"
	hostrt "runtime"

	"dana/internal/obs"
)

// Stats aggregates execution counters of a Machine.
//
// ComputeCycles and LoadCycles are *work* totals summed over all model
// threads; Cycles is the modeled *makespan* (threads run concurrently,
// so a merge batch contributes the slowest thread's time). The Span*
// fields decompose that makespan exactly:
//
//	Cycles == SpanLoadCycles + SpanComputeCycles + MergeCycles
//
// always, on every path — the invariant `danactl stats` and the obs
// tests assert. IdleCycles is the utilization complement inside merge
// batches (thread-slots × makespan − work); it is not part of Cycles.
type Stats struct {
	Cycles        int64 // total accelerator cycles (makespan)
	ComputeCycles int64 // per-tuple + post-merge instruction cycles (work)
	MergeCycles   int64 // tree-bus merge and model broadcast cycles
	LoadCycles    int64 // input FIFO -> scratchpad distribution cycles (work)
	Tuples        int64
	Batches       int64
	Instructions  int64

	SpanLoadCycles    int64 // critical-path share of tuple loads
	SpanComputeCycles int64 // critical-path share of compute
	IdleCycles        int64 // idle thread-slot cycles during merge batches
}

// Seconds converts the cycle count to simulated seconds at the clock.
func (s Stats) Seconds(clockHz float64) float64 { return float64(s.Cycles) / clockHz }

// Utilization returns the fraction of the threads' cycle capacity doing
// work over the modeled makespan (Figure 12's compute-utilization axis).
func (s Stats) Utilization(threads int) float64 {
	if s.Cycles == 0 || threads < 1 {
		return 0
	}
	return float64(s.LoadCycles+s.ComputeCycles) / (float64(s.Cycles) * float64(threads))
}

// Machine executes a compiled Program on a configured instance of the
// template architecture, producing real results and cycle counts.
type Machine struct {
	Prog *Program
	Cfg  Config

	scratch [][]float32 // per-thread scratchpads
	stats   Stats

	// Reused per-batch buffers (allocation-churn control; no semantic
	// effect): per-thread merge accumulators, per-thread cycle counters,
	// and the model broadcast staging copy.
	mergeAccs [][]float32
	threadCyc []int64
	bcast     []float32

	// Static cycle costs, precomputed once per program (instruction
	// cycles depend only on the instruction and the config): total cost
	// of each instruction list, the tuple load, the thread-local merge
	// accumulate, and the model write-back.
	cycPerTuple    int64
	cycPostMerge   int64
	cycRowUpdates  int64
	cycConvergence int64
	cycLoad        int64
	cycLocalAcc    int64
	cycWriteBack   int64

	// Host fan-out of merge batches (SetHostWorkers): the k model
	// threads of a batch are independent (each owns its scratchpad and
	// merge accumulator), so they are dealt w, w+W, ... to W host
	// goroutines. Helpers are spawned lazily and live until Close.
	hostWorkers int
	helperCh    []chan batchJob
	helperDone  chan struct{}
	partErrs    []error

	// Observability handles (SetObs); nil handles are no-ops. Charged
	// only by the coordinating goroutine (RunBatch/Converged), mirroring
	// the stats deltas.
	obsCyc       *obs.Counter
	obsCycLoad   *obs.Counter
	obsCycComp   *obs.Counter
	obsCycMerge  *obs.Counter
	obsCycIdle   *obs.Counter
	obsTuples    *obs.Counter
	obsBatches   *obs.Counter
	obsInstrs    *obs.Counter
	obsBatchHist *obs.Histogram
}

// SetObs registers the machine's counters with an observability
// registry (obs.Noop disables). The registry's engine.cycles_* counters
// accumulate the same exact decomposition as the Span*/Merge stats, so
// engine.cycles_load + engine.cycles_compute + engine.cycles_merge ==
// engine.cycles holds for any run mix.
func (m *Machine) SetObs(r *obs.Registry) {
	m.obsCyc = r.Counter(obs.EngineCycles)
	m.obsCycLoad = r.Counter(obs.EngineCyclesLoad)
	m.obsCycComp = r.Counter(obs.EngineCyclesCompute)
	m.obsCycMerge = r.Counter(obs.EngineCyclesMerge)
	m.obsCycIdle = r.Counter(obs.EngineCyclesIdle)
	m.obsTuples = r.Counter(obs.EngineTuples)
	m.obsBatches = r.Counter(obs.EngineBatches)
	m.obsInstrs = r.Counter(obs.EngineInstrs)
	m.obsBatchHist = r.Hist(obs.HistBatchTuples)
}

// batchJob is one helper's share of a merge batch.
type batchJob struct {
	tuples  [][]float32
	k, w, W int
	errs    []error
}

// NewMachine instantiates the accelerator.
func NewMachine(p *Program, cfg Config) (*Machine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{Prog: p, Cfg: cfg, scratch: make([][]float32, cfg.Threads)}
	for t := range m.scratch {
		m.scratch[t] = make([]float32, p.Slots)
		copy(m.scratch[t][p.ConstSlot.Base:p.ConstSlot.Base+p.ConstSlot.Len], p.Consts)
	}
	m.cycPerTuple = listCycles(p.PerTuple, cfg)
	m.cycPostMerge = listCycles(p.PostMerge, cfg)
	m.cycRowUpdates = listCycles(p.RowUpdates, cfg)
	m.cycConvergence = listCycles(p.Convergence, cfg)
	// The access engine distributes 8 values per cycle per thread FIFO.
	m.cycLoad = int64(ceilDiv(p.InputSlot.Len, 8))
	m.cycLocalAcc = int64(ceilDiv(p.MergeSrc.Len, cfg.Lanes()))
	m.cycWriteBack = int64(ceilDiv(p.ModelSlot.Len, cfg.Lanes()))
	return m, nil
}

// SetHostWorkers sets how many host goroutines execute a merge batch's
// independent model threads (1 = serial, the default). This changes
// wall-clock time only: each model thread's tuple order, accumulation
// order, and the tree-bus merge order are unchanged, so results and
// modeled cycles are bit-identical for any value. A machine with
// workers > 1 must be Closed to release its helper goroutines.
func (m *Machine) SetHostWorkers(n int) {
	if n < 1 {
		n = 1
	}
	// Clamp to schedulable cores here, at configuration time: more
	// workers than GOMAXPROCS cannot speed up a CPU-bound loop, and the
	// per-batch runtime query this replaces sat on the //dana:hotpath
	// (surfaced by the hotcall analyzer). Fan-out width changes
	// wall-clock only, never results, so clamping early is equivalent.
	if maxp := hostrt.GOMAXPROCS(0); n > maxp {
		n = maxp
	}
	m.hostWorkers = n
}

// Close releases the helper goroutines (idempotent; only needed after
// SetHostWorkers with n > 1).
func (m *Machine) Close() {
	for _, ch := range m.helperCh {
		close(ch)
	}
	m.helperCh = nil
}

// ensureHelpers lazily spawns helpers 1..W-1 (the caller acts as 0).
func (m *Machine) ensureHelpers(w int) {
	if m.helperDone == nil {
		m.helperDone = make(chan struct{}, m.hostWorkers)
	}
	for len(m.helperCh) < w-1 {
		ch := make(chan batchJob)
		m.helperCh = append(m.helperCh, ch)
		go func() {
			for job := range ch {
				m.runPartition(job.tuples, job.k, job.w, job.W, &job.errs[job.w])
				m.helperDone <- struct{}{}
			}
		}()
	}
}

// runPartition executes model threads w, w+W, ... of one merge batch:
// tuple loads, the per-tuple program, and the thread-local merge
// accumulate. It only touches those threads' scratchpads, accumulators,
// and cycle counters, so partitions are mutually independent; no shared
// stats are written (the caller charges them from static costs).
//
//dana:hotpath
func (m *Machine) runPartition(tuples [][]float32, k, w, W int, errp *error) {
	p := m.Prog
	accs := m.mergeAccs[:k]
	threadCycles := m.threadCyc[:k]
	for t := w; t < k; t += W {
		for i := t; i < len(tuples); i += k {
			if err := m.loadTuple(t, tuples[i]); err != nil {
				*errp = err
				return
			}
			if err := m.execList(t, p.PerTuple); err != nil {
				*errp = err
				return
			}
			threadCycles[t] += m.cycLoad + m.cycPerTuple
			src := m.scratch[t][p.MergeSrc.Base : p.MergeSrc.Base+p.MergeSrc.Len]
			if len(accs[t]) == 0 {
				accs[t] = append(accs[t], src...)
			} else {
				if p.MergeOp == AAdd {
					acc := accs[t]
					for j := range acc {
						acc[j] = acc[j] + src[j]
					}
				} else {
					for j := range accs[t] {
						accs[t][j] = alu(p.MergeOp, accs[t][j], src[j])
					}
				}
				threadCycles[t] += m.cycLocalAcc
			}
		}
	}
}

// Stats returns a snapshot of the counters.
func (m *Machine) Stats() Stats { return m.stats }

// ResetStats zeroes the counters.
func (m *Machine) ResetStats() { m.stats = Stats{} }

// Model returns a copy of the current model parameters.
func (m *Machine) Model() []float32 {
	s := m.Prog.ModelSlot
	out := make([]float32, s.Len)
	copy(out, m.scratch[0][s.Base:s.Base+s.Len])
	return out
}

// SetModel loads model parameters into every thread.
func (m *Machine) SetModel(vals []float32) error {
	s := m.Prog.ModelSlot
	if len(vals) != s.Len {
		return fmt.Errorf("engine: model has %d parameters, got %d", s.Len, len(vals))
	}
	for t := range m.scratch {
		copy(m.scratch[t][s.Base:s.Base+s.Len], vals)
	}
	return nil
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

func log2Ceil(n int) int {
	k := 0
	for v := 1; v < n; v <<= 1 {
		k++
	}
	return k
}

func alu(op AluOp, a, b float32) float32 {
	switch op {
	case AMov:
		return a
	case AAdd:
		return a + b
	case ASub:
		return a - b
	case AMul:
		return a * b
	case ADiv:
		return a / b
	case ALt:
		if a < b {
			return 1
		}
		return 0
	case AGt:
		if a > b {
			return 1
		}
		return 0
	case ASigmoid:
		return float32(1 / (1 + math.Exp(-float64(a))))
	case AGaussian:
		return float32(math.Exp(-float64(a) * float64(a)))
	case ASqrt:
		return float32(math.Sqrt(float64(a)))
	case ASquare:
		return a * a
	default:
		return a
	}
}

// exec runs one macro instruction on thread t (cycle costs are charged
// by the caller from the precomputed tables).
//
//dana:hotpath
func (m *Machine) exec(t int, in *Instr) error {
	th := m.scratch[t]
	switch in.Kind {
	case KEW:
		// The specialized loops below are wall-clock fast paths only:
		// they perform the identical float32 operations in the identical
		// order as the generic modulo-broadcast loop (per-iteration
		// loads are kept so overlapping slots behave exactly the same),
		// so results and cycle counts are bit-identical.
		unary := in.Op.IsUnary()
		if in.A.Len <= 0 || (!unary && in.B.Len <= 0) {
			return fmt.Errorf("engine: EW with empty source: %v", in)
		}
		dst := th[in.Dst.Base : in.Dst.Base+in.Dst.Len]
		switch {
		case unary && in.A.Len >= in.Dst.Len:
			a := th[in.A.Base:]
			switch in.Op {
			case AMov:
				for i := range dst {
					dst[i] = a[i]
				}
			case ASquare:
				for i := range dst {
					dst[i] = a[i] * a[i]
				}
			default:
				for i := range dst {
					dst[i] = alu(in.Op, a[i], 0)
				}
			}
		case unary:
			for i := range dst {
				dst[i] = alu(in.Op, th[in.A.Base+i%in.A.Len], 0)
			}
		case in.A.Len >= in.Dst.Len && in.B.Len >= in.Dst.Len:
			a, b := th[in.A.Base:], th[in.B.Base:]
			switch in.Op {
			case AAdd:
				for i := range dst {
					dst[i] = a[i] + b[i]
				}
			case ASub:
				for i := range dst {
					dst[i] = a[i] - b[i]
				}
			case AMul:
				for i := range dst {
					dst[i] = a[i] * b[i]
				}
			case ADiv:
				for i := range dst {
					dst[i] = a[i] / b[i]
				}
			default:
				for i := range dst {
					dst[i] = alu(in.Op, a[i], b[i])
				}
			}
		case in.A.Len >= in.Dst.Len && in.B.Len == 1:
			a, b := th[in.A.Base:], th[in.B.Base:]
			switch in.Op {
			case AAdd:
				for i := range dst {
					dst[i] = a[i] + b[0]
				}
			case ASub:
				for i := range dst {
					dst[i] = a[i] - b[0]
				}
			case AMul:
				for i := range dst {
					dst[i] = a[i] * b[0]
				}
			case ADiv:
				for i := range dst {
					dst[i] = a[i] / b[0]
				}
			default:
				for i := range dst {
					dst[i] = alu(in.Op, a[i], b[0])
				}
			}
		case in.A.Len == 1 && in.B.Len >= in.Dst.Len:
			a, b := th[in.A.Base:], th[in.B.Base:]
			switch in.Op {
			case AAdd:
				for i := range dst {
					dst[i] = a[0] + b[i]
				}
			case ASub:
				for i := range dst {
					dst[i] = a[0] - b[i]
				}
			case AMul:
				for i := range dst {
					dst[i] = a[0] * b[i]
				}
			case ADiv:
				for i := range dst {
					dst[i] = a[0] / b[i]
				}
			default:
				for i := range dst {
					dst[i] = alu(in.Op, a[0], b[i])
				}
			}
		default:
			for i := range dst {
				dst[i] = alu(in.Op, th[in.A.Base+i%in.A.Len], th[in.B.Base+i%in.B.Len])
			}
		}
		return nil
	case KReduce:
		for g := 0; g < in.Dst.Len; g++ {
			base := in.A.Base + g*in.GStride
			var acc float32
			if in.Op == AAdd && in.GroupSize > 0 {
				acc = th[base]
				for e, idx := 1, base; e < in.GroupSize; e++ {
					idx += in.EStride
					acc = acc + th[idx]
				}
			} else {
				for e := 0; e < in.GroupSize; e++ {
					v := th[base+e*in.EStride]
					if e == 0 {
						acc = v
					} else {
						acc = alu(in.Op, acc, v)
					}
				}
			}
			th[in.Dst.Base+g] = acc
		}
		return nil
	case KGather:
		idx := int(math.Round(float64(th[in.A.Base])))
		rows := m.Prog.ModelSlot.Len / in.RowLen
		if idx < 0 || idx >= rows {
			return fmt.Errorf("engine: gather row %d outside model of %d rows", idx, rows)
		}
		src := m.Prog.ModelSlot.Base + idx*in.RowLen
		copy(th[in.Dst.Base:in.Dst.Base+in.RowLen], th[src:src+in.RowLen])
		return nil
	case KScatter:
		idx := int(math.Round(float64(th[in.B.Base])))
		rows := m.Prog.ModelSlot.Len / in.RowLen
		if idx < 0 || idx >= rows {
			return fmt.Errorf("engine: scatter row %d outside model of %d rows", idx, rows)
		}
		dst := m.Prog.ModelSlot.Base + idx*in.RowLen
		copy(th[dst:dst+in.RowLen], th[in.A.Base:in.A.Base+in.RowLen])
		return nil
	default:
		return fmt.Errorf("engine: invalid instruction kind %d", in.Kind)
	}
}

// execList executes an instruction list on thread t without touching
// any shared counters (safe from batch helper goroutines).
func (m *Machine) execList(t int, list []Instr) error {
	for i := range list {
		if err := m.exec(t, &list[i]); err != nil {
			return err
		}
	}
	return nil
}

// runList executes an instruction list on thread t and counts its
// instructions. The list's total cycle cost is static (the Machine's
// cyc* fields); on error the caller abandons the run, so no partial
// cycles are charged.
func (m *Machine) runList(t int, list []Instr) error {
	if err := m.execList(t, list); err != nil {
		return err
	}
	m.stats.Instructions += int64(len(list))
	return nil
}

// loadTuple writes tuple values into thread t's input region (the cycle
// cost is the static m.cycLoad).
//
//dana:hotpath
func (m *Machine) loadTuple(t int, tuple []float32) error {
	s := m.Prog.InputSlot
	if len(tuple) != s.Len {
		return fmt.Errorf("engine: tuple width %d, input region %d", len(tuple), s.Len)
	}
	copy(m.scratch[t][s.Base:s.Base+s.Len], tuple)
	return nil
}

// RunBatch executes one merge batch. Without a merge function the batch
// runs tuple-at-a-time SGD on thread 0; with one, tuples are dealt
// round-robin over the threads, per-thread merge values accumulate
// locally, and the tree bus combines them before the post-merge update.
//
//dana:hotpath
func (m *Machine) RunBatch(tuples [][]float32) error {
	p := m.Prog
	if len(tuples) == 0 {
		return nil
	}
	m.stats.Batches++
	m.stats.Tuples += int64(len(tuples))
	m.obsBatches.Inc()
	m.obsTuples.Add(int64(len(tuples)))
	m.obsBatchHist.Observe(int64(len(tuples)))

	if !p.HasMerge() {
		var loadTot, compTot int64
		for _, tup := range tuples {
			if err := m.loadTuple(0, tup); err != nil {
				return err
			}
			loadTot += m.cycLoad
			if err := m.runList(0, p.PerTuple); err != nil {
				return err
			}
			if err := m.runList(0, p.RowUpdates); err != nil {
				return err
			}
			compTot += m.cycPerTuple + m.cycRowUpdates
			if p.UpdatedSlot.Len > 0 {
				copy(m.scratch[0][p.ModelSlot.Base:p.ModelSlot.Base+p.ModelSlot.Len],
					m.scratch[0][p.UpdatedSlot.Base:p.UpdatedSlot.Base+p.UpdatedSlot.Len])
				compTot += m.cycWriteBack
			}
		}
		m.stats.LoadCycles += loadTot
		m.stats.ComputeCycles += compTot
		m.stats.Cycles += loadTot + compTot
		// Single-thread batch: the span is the work itself.
		m.stats.SpanLoadCycles += loadTot
		m.stats.SpanComputeCycles += compTot
		m.obsCyc.Add(loadTot + compTot)
		m.obsCycLoad.Add(loadTot)
		m.obsCycComp.Add(compTot)
		m.obsInstrs.Add(int64(len(tuples)) * int64(len(p.PerTuple)+len(p.RowUpdates)))
		return nil
	}

	k := m.Cfg.Threads
	if k > len(tuples) {
		k = len(tuples)
	}
	if cap(m.mergeAccs) < k {
		//danalint:ignore hotalloc -- capacity-guarded first-batch growth, reused afterwards
		m.mergeAccs = make([][]float32, k)
	}
	if cap(m.threadCyc) < k {
		//danalint:ignore hotalloc -- capacity-guarded first-batch growth, reused afterwards
		m.threadCyc = make([]int64, k)
	}
	accs := m.mergeAccs[:k]
	threadCycles := m.threadCyc[:k]
	for t := 0; t < k; t++ {
		accs[t] = accs[t][:0] // empty = no tuple seen this batch
		threadCycles[t] = 0
	}
	// Run the k independent model threads, fanned across host workers
	// when configured. Every thread sees its tuples (i ≡ t mod k) in
	// increasing order and the shared counters below are static sums, so
	// the partitioning is invisible to results and modeled cycles.
	n := len(tuples)
	W := m.hostWorkers // already clamped to GOMAXPROCS by SetHostWorkers
	if W > k {
		W = k
	}
	if W <= 1 {
		var perr error
		m.runPartition(tuples, k, 0, 1, &perr)
		if perr != nil {
			return perr
		}
	} else {
		//danalint:ignore hotcall -- one-time lazy helper spawn; channels and goroutines are reused for the machine's lifetime
		m.ensureHelpers(W)
		if cap(m.partErrs) < W {
			//danalint:ignore hotalloc -- capacity-guarded first-batch growth, reused afterwards
			m.partErrs = make([]error, W)
		}
		errs := m.partErrs[:W]
		for w := range errs {
			errs[w] = nil
		}
		for w := 1; w < W; w++ {
			m.helperCh[w-1] <- batchJob{tuples: tuples, k: k, w: w, W: W, errs: errs}
		}
		m.runPartition(tuples, k, 0, W, &errs[0])
		for w := 1; w < W; w++ {
			<-m.helperDone
		}
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
	}
	// Each of the k threads saw at least one tuple (k <= n), so n-k
	// tuples paid the thread-local accumulate.
	m.stats.Instructions += int64(n) * int64(len(p.PerTuple))
	m.obsInstrs.Add(int64(n) * int64(len(p.PerTuple)))
	m.stats.LoadCycles += int64(n) * m.cycLoad
	m.stats.ComputeCycles += int64(n)*m.cycPerTuple + int64(n-k)*m.cycLocalAcc
	// Threads run in parallel: the batch takes as long as the slowest.
	var maxT, sumT int64
	for _, c := range threadCycles {
		sumT += c
		if c > maxT {
			maxT = c
		}
	}
	m.stats.Cycles += maxT
	// Span decomposition: per-thread cycles grow monotonically with the
	// thread's tuple count, so the slowest thread is one with
	// ceil(n/k) tuples — its load share is exact, the rest of the span
	// is compute (per-tuple programs + thread-local accumulates). Idle
	// is the capacity the other thread-slots wasted waiting for it.
	tmax := int64((n + k - 1) / k)
	spanLoad := tmax * m.cycLoad
	m.stats.SpanLoadCycles += spanLoad
	m.stats.SpanComputeCycles += maxT - spanLoad
	m.stats.IdleCycles += int64(k)*maxT - sumT
	m.obsCyc.Add(maxT)
	m.obsCycLoad.Add(spanLoad)
	m.obsCycComp.Add(maxT - spanLoad)
	m.obsCycIdle.Add(int64(k)*maxT - sumT)

	// Tree-bus merge: log2(k) stages over an 8-ALU bus.
	merged := accs[0]
	for t := 1; t < k; t++ {
		if p.MergeOp == AAdd {
			src := accs[t]
			for j := range merged {
				merged[j] = merged[j] + src[j]
			}
		} else {
			for j := range merged {
				merged[j] = alu(p.MergeOp, merged[j], accs[t][j])
			}
		}
	}
	mc := int64(ceilDiv(p.MergeSrc.Len, 8) * max(1, log2Ceil(k)))
	if k == 1 {
		mc = 0
	}
	m.stats.MergeCycles += mc
	m.stats.Cycles += mc
	m.obsCycMerge.Add(mc)
	m.obsCyc.Add(mc)
	copy(m.scratch[0][p.MergeDst.Base:p.MergeDst.Base+p.MergeDst.Len], merged)

	// Post-merge stage on thread 0.
	if err := m.runList(0, p.PostMerge); err != nil {
		return err
	}
	if err := m.runList(0, p.RowUpdates); err != nil {
		return err
	}
	m.stats.ComputeCycles += m.cycPostMerge + m.cycRowUpdates
	m.stats.Cycles += m.cycPostMerge + m.cycRowUpdates
	m.stats.SpanComputeCycles += m.cycPostMerge + m.cycRowUpdates
	m.obsCycComp.Add(m.cycPostMerge + m.cycRowUpdates)
	m.obsCyc.Add(m.cycPostMerge + m.cycRowUpdates)
	m.obsInstrs.Add(int64(len(p.PostMerge) + len(p.RowUpdates)))

	// Model update + broadcast to every thread over the bus.
	if p.UpdatedSlot.Len > 0 {
		newModel := m.scratch[0][p.UpdatedSlot.Base : p.UpdatedSlot.Base+p.UpdatedSlot.Len]
		m.bcast = append(m.bcast[:0], newModel...)
		for t := 0; t < m.Cfg.Threads; t++ {
			copy(m.scratch[t][p.ModelSlot.Base:p.ModelSlot.Base+p.ModelSlot.Len], m.bcast)
		}
		bc := int64(ceilDiv(p.ModelSlot.Len, 8))
		m.stats.MergeCycles += bc
		m.stats.Cycles += bc
		m.obsCycMerge.Add(bc)
		m.obsCyc.Add(bc)
	} else if len(p.RowUpdates) > 0 && m.Cfg.Threads > 1 {
		// Row updates landed on thread 0's model copy; sync the rest.
		src := m.scratch[0][p.ModelSlot.Base : p.ModelSlot.Base+p.ModelSlot.Len]
		for t := 1; t < m.Cfg.Threads; t++ {
			copy(m.scratch[t][p.ModelSlot.Base:p.ModelSlot.Base+p.ModelSlot.Len], src)
		}
		bc := int64(ceilDiv(p.ModelSlot.Len, 8))
		m.stats.MergeCycles += bc
		m.stats.Cycles += bc
		m.obsCycMerge.Add(bc)
		m.obsCyc.Add(bc)
	}
	return nil
}

// EpochStream feeds one epoch's tuples to the machine incrementally, in
// merge-coefficient batches, without requiring the whole epoch to be
// materialized first. It forms exactly the batches RunEpoch would form
// on the concatenated tuple sequence, so cycle counts and the trained
// model are bit-identical whether tuples arrive all at once or page by
// page while later pages are still being extracted (§5.1.1 overlap).
type EpochStream struct {
	m         *Machine
	batchSize int
	buf       [][]float32
	arena     []float32 // value storage for buffered tuples
}

// StreamEpoch starts an epoch fed incrementally via Feed/Finish.
func (m *Machine) StreamEpoch(batchSize int) *EpochStream {
	if batchSize < 1 {
		batchSize = 1
	}
	return &EpochStream{m: m, batchSize: batchSize}
}

// Reset re-arms the stream for a new epoch, keeping its buffers — the
// merge path's cross-epoch buffer reuse (a stream abandoned mid-epoch
// by a failed run is safe to reuse after Reset).
func (s *EpochStream) Reset() {
	s.buf = s.buf[:0]
	s.arena = s.arena[:0]
}

// Feed appends tuples to the epoch, running every batch that fills. Any
// tuples Feed must buffer are copied by value, so the caller may reuse
// the tuples' backing storage as soon as Feed returns. Full batches run
// directly on the caller's row views (zero-copy); only a partial tail
// is value-copied into the stream's own arena.
//
//dana:hotpath
func (s *EpochStream) Feed(tuples [][]float32) error {
	for len(tuples) > 0 {
		// Fast path: no partial batch pending, run directly from the input.
		if len(s.buf) == 0 && len(tuples) >= s.batchSize {
			if err := s.m.RunBatch(tuples[:s.batchSize]); err != nil {
				return err
			}
			tuples = tuples[s.batchSize:]
			continue
		}
		n := s.batchSize - len(s.buf)
		if n > len(tuples) {
			n = len(tuples)
		}
		for _, tup := range tuples[:n] {
			start := len(s.arena)
			if cap(s.arena)-start < len(tup) {
				// Fresh block; rows already buffered keep referencing (and
				// keep alive) the block they were copied into.
				blk := s.batchSize * len(tup)
				if blk < 1024 {
					blk = 1024
				}
				//danalint:ignore hotalloc -- capacity-guarded arena growth, reused across batches
				s.arena = make([]float32, 0, blk)
				start = 0
			}
			s.arena = append(s.arena, tup...)
			s.buf = append(s.buf, s.arena[start:len(s.arena):len(s.arena)])
		}
		tuples = tuples[n:]
		if len(s.buf) == s.batchSize {
			if err := s.m.RunBatch(s.buf); err != nil {
				return err
			}
			s.buf = s.buf[:0]
			s.arena = s.arena[:0]
		}
	}
	return nil
}

// Finish runs the trailing partial batch, ending the epoch.
func (s *EpochStream) Finish() error {
	if len(s.buf) == 0 {
		return nil
	}
	err := s.m.RunBatch(s.buf)
	s.buf = s.buf[:0]
	s.arena = s.arena[:0]
	return err
}

// RunEpoch processes the tuples in merge-coefficient batches.
func (m *Machine) RunEpoch(tuples [][]float32, batchSize int) error {
	s := m.StreamEpoch(batchSize)
	if err := s.Feed(tuples); err != nil {
		return err
	}
	return s.Finish()
}

// Converged evaluates the convergence program (thread 0).
func (m *Machine) Converged() (bool, error) {
	p := m.Prog
	if p.ConvSlot.Len == 0 {
		return false, nil
	}
	if err := m.runList(0, p.Convergence); err != nil {
		return false, err
	}
	m.stats.ComputeCycles += m.cycConvergence
	m.stats.Cycles += m.cycConvergence
	m.stats.SpanComputeCycles += m.cycConvergence
	m.obsCycComp.Add(m.cycConvergence)
	m.obsCyc.Add(m.cycConvergence)
	m.obsInstrs.Add(int64(len(p.Convergence)))
	return m.scratch[0][p.ConvSlot.Base] > 0.5, nil
}

// Train runs up to maxEpochs epochs (0 = the program's own budget is
// managed by the caller), checking convergence after each.
func (m *Machine) Train(tuples [][]float32, batchSize, maxEpochs int) (int, error) {
	if maxEpochs < 1 {
		maxEpochs = 1
	}
	for e := 1; e <= maxEpochs; e++ {
		if err := m.RunEpoch(tuples, batchSize); err != nil {
			return e - 1, err
		}
		done, err := m.Converged()
		if err != nil {
			return e, err
		}
		if done {
			return e, nil
		}
	}
	return maxEpochs, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
