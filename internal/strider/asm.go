package strider

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses Strider assembly text into instructions. Syntax
// follows the paper's examples: one instruction per line, operands
// comma-separated, comments introduced by `\\`, `//`, `;`, or `#`.
//
//	readB 12, 2, %cr0
//	bentr
//	bexit 1, %t0, %cr0
func Assemble(src string) ([]Instr, error) {
	prog, _, err := AssembleWithPos(src)
	return prog, err
}

// Pos locates an assembled instruction in its source text (1-based).
type Pos struct {
	Line, Col int
}

// AssembleWithPos is Assemble plus a per-instruction source position
// (the mnemonic's line and column), letting callers map verifier
// diagnostics — which are anchored to program counters — back to the
// assembly text.
func AssembleWithPos(src string) ([]Instr, []Pos, error) {
	var prog []Instr
	var pos []Pos
	for lineno, raw := range strings.Split(src, "\n") {
		line := raw
		for _, marker := range []string{`\\`, "//", ";", "#"} {
			if i := strings.Index(line, marker); i >= 0 {
				line = line[:i]
			}
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		mnemonic := strings.TrimSpace(fields[0])
		op, ok := opcodeByName(mnemonic)
		if !ok {
			return nil, nil, fmt.Errorf("strider: line %d: unknown mnemonic %q", lineno+1, mnemonic)
		}
		in := Instr{Op: op}
		var operands []string
		if len(fields) == 2 {
			for _, o := range strings.Split(fields[1], ",") {
				o = strings.TrimSpace(o)
				if o != "" {
					operands = append(operands, o)
				}
			}
		}
		want := operandCount(op)
		if len(operands) != want {
			return nil, nil, fmt.Errorf("strider: line %d: %s takes %d operands, got %d", lineno+1, op, want, len(operands))
		}
		dst := []*Operand{&in.A, &in.B, &in.C}
		for i, o := range operands {
			parsed, err := parseOperand(o)
			if err != nil {
				return nil, nil, fmt.Errorf("strider: line %d: %w", lineno+1, err)
			}
			*dst[i] = parsed
		}
		prog = append(prog, in)
		pos = append(pos, Pos{Line: lineno + 1, Col: strings.Index(raw, mnemonic) + 1})
	}
	return prog, pos, nil
}

// AssembleVerified assembles src and verifies the result against cfg
// and pageSize, returning the report with diagnostics already mapped to
// source positions via the returned Pos table. Assembly errors are
// returned as-is; verification outcomes live in the report so callers
// choose their own strictness.
func AssembleVerified(src string, cfg Config, opts VerifyOptions) ([]Instr, []Pos, *Report, error) {
	prog, pos, err := AssembleWithPos(src)
	if err != nil {
		return nil, nil, nil, err
	}
	return prog, pos, Verify(prog, cfg, opts), nil
}

// Disassemble renders a program as assembly text.
func Disassemble(prog []Instr) string {
	var b strings.Builder
	for _, in := range prog {
		b.WriteString(in.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// EncodeProgram packs a program into 22-bit words (stored one per uint32).
func EncodeProgram(prog []Instr) []uint32 {
	words := make([]uint32, len(prog))
	for i, in := range prog {
		words[i] = in.Encode()
	}
	return words
}

// DecodeProgram unpacks words produced by EncodeProgram.
func DecodeProgram(words []uint32) ([]Instr, error) {
	prog := make([]Instr, len(words))
	for i, w := range words {
		in, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("strider: word %d: %w", i, err)
		}
		prog[i] = in
	}
	return prog, nil
}

func opcodeByName(name string) (Opcode, bool) {
	for i, n := range opcodeNames {
		if n == name {
			return Opcode(i), true
		}
	}
	return 0, false
}

// operandCount returns how many operand fields each mnemonic uses in
// assembly (unused fields encode as zero).
func operandCount(op Opcode) int {
	switch op {
	case OpBentr:
		return 0
	case OpInsert:
		return 2
	default:
		return 3
	}
}

func parseOperand(s string) (Operand, error) {
	switch {
	case strings.HasPrefix(s, "%t"):
		i, err := strconv.Atoi(s[2:])
		if err != nil {
			return 0, fmt.Errorf("bad register %q", s)
		}
		return TReg(i)
	case strings.HasPrefix(s, "%cr"):
		i, err := strconv.Atoi(s[3:])
		if err != nil {
			return 0, fmt.Errorf("bad register %q", s)
		}
		return CReg(i)
	default:
		v, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("bad operand %q", s)
		}
		return Imm(v)
	}
}
