// Package verify is the differential-testing harness: a seeded generator
// of random schemas, relations, and page fills, plus three oracles that
// cross-check independent implementations of the same semantics.
//
//	Oracle A (storage):  formed tuples → pages → decoded values must be
//	                     identical to the generated ground truth.
//	Oracle B (Strider):  the compiled Strider walker's byte stream must
//	                     equal both the direct page decode and the
//	                     generator's encoding of the ground-truth rows.
//	Oracle C (training): the pure-Go golden trainer, the hDFG
//	                     interpreter, the MADlib-style baseline, and the
//	                     engine simulator must agree on trained models.
//
// Every random choice flows from one logged seed, so any failure
// reproduces with `go test -run 'TestDifferentialSuite/seed=0x…'`.
package verify

import (
	"fmt"
	"math/rand"

	"dana/internal/storage"
)

// MaxSchemaCols is the widest schema the generator produces (PostgreSQL
// caps heap tuples at MaxHeapAttributeNumber=1600; we stop at 256, which
// still crosses every null-bitmap byte boundary of interest).
const MaxSchemaCols = 256

// Gen is a deterministic scenario generator. All methods consume the
// same underlying stream, so scenario construction order matters for
// reproduction — derive one Gen per scenario from the logged seed.
type Gen struct {
	Seed int64
	rng  *rand.Rand
}

// NewGen creates a generator for the seed.
func NewGen(seed int64) *Gen {
	return &Gen{Seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Intn exposes the stream for scenario-level choices (page size picks,
// algorithm picks) so they reproduce from the same seed.
func (g *Gen) Intn(n int) int { return g.rng.Intn(n) }

// PageSize picks one of the paper's three page sizes.
func (g *Gen) PageSize() int {
	return []int{storage.PageSize8K, storage.PageSize16K, storage.PageSize32K}[g.rng.Intn(3)]
}

// Schema generates a random schema of 1..maxCols columns drawn from all
// four column types.
func (g *Gen) Schema(maxCols int) *storage.Schema {
	if maxCols < 1 || maxCols > MaxSchemaCols {
		maxCols = MaxSchemaCols
	}
	ncols := 1 + g.rng.Intn(maxCols)
	types := []storage.ColType{storage.TFloat32, storage.TFloat64, storage.TInt32, storage.TInt64}
	cols := make([]storage.Column, ncols)
	for i := range cols {
		cols[i] = storage.Column{
			Name: fmt.Sprintf("c%d", i),
			Type: types[g.rng.Intn(len(types))],
		}
	}
	return storage.NewSchema(cols...)
}

// Value draws a random value exactly representable by the column type,
// so encode→decode must be the identity.
func (g *Gen) Value(t storage.ColType) float64 {
	switch t {
	case storage.TFloat32:
		return float64(float32(g.rng.NormFloat64() * 100))
	case storage.TInt32, storage.TInt64:
		return float64(g.rng.Int31n(1<<24) - 1<<23)
	default:
		return g.rng.NormFloat64() * 100
	}
}

// Row draws one random row for the schema.
func (g *Gen) Row(s *storage.Schema) []float64 {
	vals := make([]float64, s.NumCols())
	for i, c := range s.Cols {
		vals[i] = g.Value(c.Type)
	}
	return vals
}

// NullMask draws a null mask where each column is null with probability
// num/den; returns nil (no bitmap) when no column came up null.
func (g *Gen) NullMask(ncols, num, den int) []bool {
	mask := make([]bool, ncols)
	any := false
	for i := range mask {
		if g.rng.Intn(den) < num {
			mask[i] = true
			any = true
		}
	}
	if !any {
		return nil
	}
	return mask
}

// PageScenario is a formed page plus its ground truth for Oracle A.
type PageScenario struct {
	Schema *storage.Schema
	Page   storage.Page

	// Ground truth for live (LPNormal) items, in item order.
	LiveItems []int
	Rows      [][]float64
	Nulls     [][]bool // nil entry = tuple has no null bitmap
	VarTails  [][]byte // nil entry = no trailing varlena datum
}

// PageScenario fills a page of the given size with random tuples —
// mixing null bitmaps, trailing varlena datums, deletions, and a
// fabricated redirect — and records the surviving ground truth.
func (g *Gen) PageScenario(pageSize int) (*PageScenario, error) {
	s := g.Schema(64)
	sc := &PageScenario{Schema: s, Page: storage.NewPage(pageSize, 0)}
	nrows := 1 + g.rng.Intn(120)

	type stored struct {
		vals []float64
		mask []bool
		tail []byte
	}
	var all []stored
	for i := 0; i < nrows; i++ {
		vals := g.Row(s)
		var mask []bool
		if g.rng.Intn(3) == 0 {
			mask = g.NullMask(s.NumCols(), 1, 4)
		}
		raw, err := storage.EncodeTupleWithNulls(s, vals, mask, uint32(i+2), storage.TID{Item: uint16(i)})
		if err != nil {
			return nil, err
		}
		var tail []byte
		if mask == nil && g.rng.Intn(4) == 0 {
			// Trailing varlena datum on a no-null tuple: its offset is
			// statically hoff + DataWidth.
			payload := make([]byte, g.rng.Intn(200))
			g.rng.Read(payload)
			raw, err = storage.AppendVarlena(raw, payload)
			if err != nil {
				return nil, err
			}
			tail = payload
		}
		if _, err := sc.Page.AddItem(raw); err != nil {
			break // page full — keep what fits
		}
		all = append(all, stored{vals, mask, tail})
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("verify: no tuple of schema %v fits a %d-byte page", s, pageSize)
	}

	// Kill some tuples; fabricate one redirect if we killed any.
	dead := make(map[int]bool)
	for i := range all {
		if g.rng.Intn(4) == 0 {
			if err := sc.Page.DeleteItem(i); err != nil {
				return nil, err
			}
			dead[i] = true
		}
	}
	if len(dead) > 0 && g.rng.Intn(2) == 0 {
		for i := range all {
			if dead[i] {
				if err := sc.Page.SetLinePointer(i, storage.ItemID{Off: 0, Flags: storage.LPRedirect, Len: 0}); err != nil {
					return nil, err
				}
				break
			}
		}
	}
	for i, st := range all {
		if dead[i] {
			continue
		}
		sc.LiveItems = append(sc.LiveItems, i)
		sc.Rows = append(sc.Rows, st.vals)
		sc.Nulls = append(sc.Nulls, st.mask)
		sc.VarTails = append(sc.VarTails, st.tail)
	}
	return sc, nil
}

// RelationScenario is a multi-page relation plus ground truth.
type RelationScenario struct {
	Rel  *storage.Relation
	Rows [][]float64 // live rows in TID order
}

// RelationScenario builds a relation, inserts random rows, deletes a
// random subset, and records the survivors in scan order.
func (g *Gen) RelationScenario(pageSize, maxRows int) (*RelationScenario, error) {
	s := g.Schema(24)
	rel := storage.NewRelation("diff", s, pageSize)
	n := 1 + g.rng.Intn(maxRows)
	rows := make([][]float64, 0, n)
	tids := make([]storage.TID, 0, n)
	for i := 0; i < n; i++ {
		row := g.Row(s)
		tid, err := rel.Insert(row)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		tids = append(tids, tid)
	}
	var live [][]float64
	for i := range rows {
		if g.rng.Intn(5) == 0 {
			if err := rel.Delete(tids[i]); err != nil {
				return nil, err
			}
			continue
		}
		live = append(live, rows[i])
	}
	return &RelationScenario{Rel: rel, Rows: live}, nil
}

// InnoScenario is an InnoDB-style relation plus ground truth.
type InnoScenario struct {
	Rel  *storage.InnoRelation
	Rows [][]float64
}

// InnoScenario builds an InnoDB-layout relation with random rows (the
// simplified compact format has no delete path — every record is live).
func (g *Gen) InnoScenario(pageSize, maxRows int) (*InnoScenario, error) {
	s := g.Schema(24)
	rel := storage.NewInnoRelation("diff_inno", s, pageSize)
	n := 1 + g.rng.Intn(maxRows)
	rows := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		row := g.Row(s)
		if err := rel.Insert(row); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return &InnoScenario{Rel: rel, Rows: rows}, nil
}

// StriderScenario holds pages the generated Strider walker can legally
// traverse: every line pointer live, at least one tuple per page, no
// null bitmaps (the walker's fixed 24-byte skip assumes t_hoff = 24).
type StriderScenario struct {
	Schema   *storage.Schema
	PageSize int
	Pages    []storage.Page
	Rows     [][]float64 // all rows, page-major then item order
}

// StriderScenario builds 1..maxPages walker-clean pages.
func (g *Gen) StriderScenario(pageSize, maxPages, rowsPerPage int) (*StriderScenario, error) {
	s := g.Schema(16)
	sc := &StriderScenario{Schema: s, PageSize: pageSize}
	npages := 1 + g.rng.Intn(maxPages)
	for p := 0; p < npages; p++ {
		page := storage.NewPage(pageSize, 0)
		n := 1 + g.rng.Intn(rowsPerPage)
		for i := 0; i < n; i++ {
			row := g.Row(s)
			raw, err := storage.EncodeTuple(s, row, uint32(i+2), storage.TID{Page: uint32(p), Item: uint16(i)})
			if err != nil {
				return nil, err
			}
			if _, err := page.AddItem(raw); err != nil {
				if i == 0 {
					return nil, fmt.Errorf("verify: first tuple does not fit page")
				}
				break
			}
			sc.Rows = append(sc.Rows, row)
		}
		sc.Pages = append(sc.Pages, page)
	}
	return sc, nil
}

// InnoStriderScenario is the InnoDB-walker counterpart.
type InnoStriderScenario struct {
	Schema   *storage.Schema
	PageSize int
	Rel      *storage.InnoRelation
	Rows     [][]float64
}

// InnoStriderScenario builds an InnoDB relation the InnoDB walker can
// traverse.
func (g *Gen) InnoStriderScenario(pageSize, maxRows int) (*InnoStriderScenario, error) {
	s := g.Schema(16)
	rel := storage.NewInnoRelation("walker_inno", s, pageSize)
	n := 1 + g.rng.Intn(maxRows)
	var rows [][]float64
	for i := 0; i < n; i++ {
		row := g.Row(s)
		if err := rel.Insert(row); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return &InnoStriderScenario{Schema: s, PageSize: pageSize, Rel: rel, Rows: rows}, nil
}
