package backend_test

// The backend conformance suite: every registered backend — the DAnA
// accelerator, the TABLA design point, the golden CPU trainer, and the
// greenplum Sharded wrapper — runs through the seeded scenario
// generator and is held to the trichotomy its Capabilities declare
// (bit-identical where promised, toleranced elsewhere, typed errors for
// unsupported jobs). The mutation meta-tests in meta_test.go prove each
// check can fail.

import (
	"errors"
	"testing"

	"dana/internal/backend"
	"dana/internal/greenplum"
)

// conformanceSeeds covers all four workload classes (linear, logistic,
// svm, lrmf) and merge coefficients 1/4/8 — see GenScenario.
var conformanceSeeds = []int64{1, 2, 3, 4, 5, 9, 10, 13, 15, 16}

// allRegistrations is the full dispatch registry the runtime assembles:
// the package builtins plus greenplum's Sharded.
func allRegistrations() []backend.Registration {
	return append(backend.Builtins(), greenplum.ShardedRegistration())
}

func TestBackendConformance(t *testing.T) {
	env := backend.ConformanceEnv()
	for _, reg := range allRegistrations() {
		reg := reg
		t.Run(reg.Name, func(t *testing.T) {
			trained := 0
			for _, seed := range conformanceSeeds {
				sc := backend.GenScenario(seed)
				if vs := backend.Check(reg, env, sc); len(vs) > 0 {
					for _, v := range vs {
						t.Errorf("seed %d (%s): %s", seed, sc.Spec.Kind, v)
					}
					continue
				}
				be := reg.New(env)
				if be.Capabilities().Supports(backend.Class(string(sc.Spec.Kind))) {
					trained++
				}
			}
			if trained == 0 {
				t.Fatalf("backend %q trained no conformance scenario (all skipped as unsupported)", reg.Name)
			}
		})
	}
}

// TestConformanceClassCoverage pins the seed set to keep covering every
// workload class: a generator change that silently drops a class from
// the suite should fail here, not go unnoticed.
func TestConformanceClassCoverage(t *testing.T) {
	seen := map[backend.Class]bool{}
	for _, seed := range conformanceSeeds {
		sc := backend.GenScenario(seed)
		p, err := backend.BuildProgram(sc, backend.ConformanceEnv())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		seen[backend.Classify(p.Graph)] = true
	}
	for _, class := range backend.AllClasses() {
		if !seen[class] {
			t.Errorf("conformance seeds cover no %s scenario", class)
		}
	}
}

// TestScenarioDeterminism: same seed, same scenario — the property that
// makes every conformance failure reproducible from its seed.
func TestScenarioDeterminism(t *testing.T) {
	a, b := backend.GenScenario(7), backend.GenScenario(7)
	if a.Spec != b.Spec || len(a.Tuples) != len(b.Tuples) {
		t.Fatalf("seed 7 scenarios differ: %+v vs %+v", a.Spec, b.Spec)
	}
	for i := range a.Tuples {
		for j := range a.Tuples[i] {
			if a.Tuples[i][j] != b.Tuples[i][j] {
				t.Fatalf("seed 7 tuple [%d][%d] differs", i, j)
			}
		}
	}
}

// TestShardedRejectsLRMF pins the typed-error leg for a backend with a
// genuinely restricted class set: model averaging over factor models is
// out of capability, and both EstimateCost and Configure must say so
// with ErrUnsupported.
func TestShardedRejectsLRMF(t *testing.T) {
	env := backend.ConformanceEnv()
	sc := backend.GenScenario(15) // lrmf
	p, err := backend.BuildProgram(sc, env)
	if err != nil {
		t.Fatal(err)
	}
	job := backend.JobFor(sc, p)
	if job.Class != backend.ClassLRMF {
		t.Fatalf("seed 15 classified as %s, want lrmf", job.Class)
	}
	be := greenplum.NewSharded(env)
	if _, err := be.EstimateCost(job); !errors.Is(err, backend.ErrUnsupported) {
		t.Errorf("EstimateCost(lrmf) = %v, want ErrUnsupported", err)
	}
	if err := be.Configure(p); !errors.Is(err, backend.ErrUnsupported) {
		t.Errorf("Configure(lrmf) = %v, want ErrUnsupported", err)
	}
}
