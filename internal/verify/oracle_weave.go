package verify

// Oracle W: the any-precision weave data path. Ground-truth feature
// rows quantized into the vertical bit-plane layout must decode back
// exactly per the scalar quantization model at every read precision —
// bit-exact reconstruction at k=32 for values on the range grid,
// bounded quantization error at k<32, labels exact always.

import (
	"fmt"
	"math"

	"dana/internal/storage"
	"dana/internal/weaving"
)

// WeaveScenario is a seeded ground truth for the weave oracle: feature
// rows on the quantization grid of fixed ranges, labels, and the built
// weave pages.
type WeaveScenario struct {
	Feats  [][]float32
	Labels []float32
	Ranges []storage.WeaveRange
	Pages  []storage.WeavePage
}

// WeaveScenario generates maxRows-bounded rows over 1..8 feature
// columns. Every feature sits on the 2⁻²³ grid of the fixed range
// {Offset: -1, Scale: 2}, so a full-width read reconstructs it
// bit-for-bit; labels are arbitrary float32s (they bypass
// quantization).
func (g *Gen) WeaveScenario(pageSize, maxRows int) (*WeaveScenario, error) {
	nfeat := 1 + g.rng.Intn(8)
	nrows := 1 + g.rng.Intn(maxRows)
	sc := &WeaveScenario{
		Feats:  make([][]float32, nrows),
		Labels: make([]float32, nrows),
		Ranges: make([]storage.WeaveRange, nfeat),
	}
	for c := range sc.Ranges {
		sc.Ranges[c] = storage.WeaveRange{Offset: -1, Scale: 2}
	}
	for i := range sc.Feats {
		row := make([]float32, nfeat)
		for c := range row {
			// n·2⁻²³ − 1 is exact in float32 for n < 2²⁴ and survives
			// Q0.32 quantization against {−1, 2} without rounding.
			n := g.rng.Intn(1 << 24)
			row[c] = float32(n)/(1<<23) - 1
		}
		sc.Feats[i] = row
		sc.Labels[i] = float32(g.rng.NormFloat64())
	}
	rowsPer := storage.WeavePageRows(pageSize, nfeat)
	if rowsPer < 1 {
		return nil, fmt.Errorf("verify: page size %d holds no %d-feature weave rows", pageSize, nfeat)
	}
	for at := 0; at < nrows; at += rowsPer {
		end := at + rowsPer
		if end > nrows {
			end = nrows
		}
		p, err := storage.BuildWeavePage(sc.Ranges, sc.Feats[at:end], sc.Labels[at:end])
		if err != nil {
			return nil, err
		}
		sc.Pages = append(sc.Pages, p)
	}
	return sc, nil
}

// CheckWeaveOracle decodes every page at the given precision and holds
// the result to three legs:
//
//  1. every decoded feature equals the scalar quantize→truncate→
//     dequantize model of the ground-truth value, exactly — a flipped
//     bit in any plane the read touches breaks this;
//  2. the quantization error against ground truth is within the
//     analytic bound Scale·(2⁻ᵏ+2⁻³¹) (grid values at k=32 come back
//     bit-identical, which the bound's zero-error case covers and leg 1
//     enforces exactly);
//  3. labels round-trip bit-exactly at every precision.
func (sc *WeaveScenario) CheckWeaveOracle(bits int) error {
	e, err := weaving.NewExtractor(bits)
	if err != nil {
		return fmt.Errorf("oracle W: %w", err)
	}
	next := 0
	for pn, p := range sc.Pages {
		rows, err := e.DecodeRows(p)
		if err != nil {
			return fmt.Errorf("oracle W: page %d: %w", pn, err)
		}
		for _, row := range rows {
			if next >= len(sc.Feats) {
				return fmt.Errorf("oracle W: decoded more rows than ground truth (%d)", len(sc.Feats))
			}
			want := sc.Feats[next]
			if len(row) != len(want)+1 {
				return fmt.Errorf("oracle W: row %d: %d values, want %d features + label", next, len(row), len(want))
			}
			for c, v := range row[:len(want)] {
				rng := sc.Ranges[c]
				exact := storage.WeaveDequantize(storage.WeaveQuantize(want[c], rng), bits, rng)
				if math.Float32bits(v) != math.Float32bits(exact) {
					return fmt.Errorf("oracle W: row %d col %d at %d bits: decoded %v, scalar model says %v",
						next, c, bits, v, exact)
				}
				bound := float64(rng.Scale)*(math.Pow(2, -float64(bits))+math.Pow(2, -31)) + 1e-5
				if diff := math.Abs(float64(v) - float64(want[c])); diff > bound {
					return fmt.Errorf("oracle W: row %d col %d at %d bits: error %g exceeds bound %g",
						next, c, bits, diff, bound)
				}
				if bits == storage.WeaveMaxBits && math.Float32bits(v) != math.Float32bits(want[c]) {
					return fmt.Errorf("oracle W: row %d col %d: full-width read %v != grid value %v (bit-exact required)",
						next, c, v, want[c])
				}
			}
			if got := row[len(want)]; math.Float32bits(got) != math.Float32bits(sc.Labels[next]) {
				return fmt.Errorf("oracle W: row %d label: %v != %v (labels bypass quantization)", next, got, sc.Labels[next])
			}
			next++
		}
	}
	if next != len(sc.Feats) {
		return fmt.Errorf("oracle W: decoded %d rows, ground truth has %d", next, len(sc.Feats))
	}
	return nil
}
