package lint

// Interprocedural layer, part 3: a small intra-function taint engine
// shared by the escape computation in summary.go and the tenantflow
// analyzer. Callers seed a set of tainted objects (or provide a source
// hook that recognizes taint-introducing expressions, e.g. reads of a
// tenant's private registry field), the engine propagates taint through
// local assignments to a fixed point, and then fires sink hooks: writes
// to package-level variables, arguments passed to callees whose
// summaries say the parameter escapes, stores into another object's
// fields, and captures by goroutines.
//
// Taint does NOT propagate through function return values: a call
// result is considered clean even if the callee returns a tainted
// input. This keeps the engine linear and is the documented caveat for
// accessor APIs like Server.TenantObs, which intentionally hand a
// tenant's registry to the caller.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// taintOrigin identifies where a tainted value came from.
type taintOrigin struct {
	label string       // human description, e.g. "tenant a's obs registry"
	root  types.Object // base object the taint derives from (tenant var, param)
	param int          // parameter index for escape computation; -1 receiver, -2 not a param
	pos   token.Pos    // where the taint was introduced
}

// taintConfig wires a taint run to its client. seeds pre-taints
// objects (parameters, for escape analysis); source recognizes
// taint-introducing selector expressions (field reads, for tenantflow).
// All hooks are optional.
type taintConfig struct {
	pkg   *Package
	mod   *Module
	seeds map[types.Object]taintOrigin

	// source classifies a selector expression as a taint source.
	source func(sel *ast.SelectorExpr) (taintOrigin, bool)

	// sinkGlobal fires when a tainted value is written to the
	// package-level variable obj.
	sinkGlobal func(origins []taintOrigin, obj types.Object, pos token.Pos)

	// sinkCall fires when a tainted value is passed as an argument (or
	// receiver) to a callee whose summary says that parameter escapes;
	// why is the callee summary's escape description.
	sinkCall func(origins []taintOrigin, calleeID, why string, pos token.Pos)

	// store fires when a tainted value is written into a field of a
	// non-global object (base), e.g. `b.reg = a.reg`.
	store func(origins []taintOrigin, base types.Object, sel *ast.SelectorExpr, pos token.Pos)

	// goCapture fires once per (go statement, tainted captured object).
	goCapture func(origins []taintOrigin, g *ast.GoStmt, obj types.Object)
}

// runTaint executes the propagate-then-sink passes over fi's body.
func runTaint(fi *FuncInfo, cfg taintConfig) {
	t := &taintRun{fi: fi, cfg: cfg, tainted: map[types.Object]taintOrigin{}}
	for o, origin := range cfg.seeds {
		t.tainted[o] = origin
	}
	// Propagation to a fixed point: each pass can only extend the
	// tainted set, and the set is bounded by the function's objects.
	// Three passes cover realistic chains (src -> tmp -> tmp2 -> sink);
	// the loop exits early when a pass adds nothing.
	for i := 0; i < 3; i++ {
		if !t.propagate() {
			break
		}
	}
	t.sinks()
}

type taintRun struct {
	fi      *FuncInfo
	cfg     taintConfig
	tainted map[types.Object]taintOrigin
}

// origins computes the taint origins of an expression. Field reads,
// indexing, dereferences, slices, and address-taking preserve taint;
// composite literals union their elements; calls launder it (see the
// package comment caveat).
func (t *taintRun) origins(e ast.Expr) []taintOrigin {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := t.cfg.pkg.TypesInfo.Uses[e]
		if obj == nil {
			obj = t.cfg.pkg.TypesInfo.Defs[e]
		}
		if origin, ok := t.tainted[obj]; ok && obj != nil {
			return []taintOrigin{origin}
		}
	case *ast.SelectorExpr:
		if t.cfg.source != nil {
			if origin, ok := t.cfg.source(e); ok {
				return []taintOrigin{origin}
			}
		}
		return t.origins(e.X)
	case *ast.IndexExpr:
		return t.origins(e.X)
	case *ast.SliceExpr:
		return t.origins(e.X)
	case *ast.StarExpr:
		return t.origins(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return t.origins(e.X)
		}
	case *ast.TypeAssertExpr:
		return t.origins(e.X)
	case *ast.CompositeLit:
		var out []taintOrigin
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			out = append(out, t.origins(el)...)
		}
		return out
	case *ast.CallExpr:
		// Conversions preserve taint; real calls launder it.
		if tv, ok := t.cfg.pkg.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return t.origins(e.Args[0])
		}
	}
	return nil
}

// propagate walks the body once, tainting locals assigned from tainted
// expressions. Reports whether the tainted set grew.
func (t *taintRun) propagate() bool {
	grew := false
	taint := func(lhs ast.Expr, origin taintOrigin) {
		obj := bindingOf(t.cfg.pkg.TypesInfo, ast.Unparen(lhs))
		if obj == nil {
			return
		}
		if _, ok := t.tainted[obj]; !ok {
			t.tainted[obj] = origin
			grew = true
		}
	}
	ast.Inspect(t.fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if origins := t.origins(rhs); len(origins) > 0 {
						taint(n.Lhs[i], origins[0])
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i, v := range n.Values {
					if origins := t.origins(v); len(origins) > 0 {
						taint(n.Names[i], origins[0])
					}
				}
			}
		case *ast.RangeStmt:
			if origins := t.origins(n.X); len(origins) > 0 {
				if n.Value != nil {
					taint(n.Value, origins[0])
				}
				if n.Key != nil {
					taint(n.Key, origins[0])
				}
			}
		}
		return true
	})
	return grew
}

// sinks walks the body once firing the configured sink hooks.
func (t *taintRun) sinks() {
	ast.Inspect(t.fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) != len(n.Rhs) || i >= len(n.Lhs) {
					break
				}
				origins := t.origins(rhs)
				if len(origins) == 0 {
					continue
				}
				t.sinkWrite(n.Lhs[i], origins, n.Pos())
			}
		case *ast.CallExpr:
			t.sinkCallSite(n)
		case *ast.GoStmt:
			t.sinkGoCapture(n)
		}
		return true
	})
}

// sinkWrite classifies one tainted write: package-level variable →
// sinkGlobal; field of some other object → store.
func (t *taintRun) sinkWrite(lhs ast.Expr, origins []taintOrigin, pos token.Pos) {
	lhs = ast.Unparen(lhs)
	info := t.cfg.pkg.TypesInfo
	root := rootObject(info, lhs)
	if root == nil {
		return
	}
	if isPackageLevelVar(root) {
		if t.cfg.sinkGlobal != nil {
			t.cfg.sinkGlobal(origins, root, pos)
		}
		return
	}
	if sel, ok := lhs.(*ast.SelectorExpr); ok && t.cfg.store != nil {
		t.cfg.store(origins, root, sel, pos)
	}
}

// sinkCallSite maps tainted arguments onto the callee summaries'
// escaping parameters.
func (t *taintRun) sinkCallSite(call *ast.CallExpr) {
	if t.cfg.sinkCall == nil || t.cfg.mod == nil {
		return
	}
	site := t.fi.Site(call)
	if site == nil {
		return
	}
	// Receiver of a method call counts as parameter -1.
	var recvOrigins []taintOrigin
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, isSel := t.cfg.pkg.TypesInfo.Selections[sel]; isSel && s.Kind() == types.MethodVal {
			recvOrigins = t.origins(sel.X)
		}
	}
	for _, calleeID := range site.Callees {
		cs, ok := t.cfg.mod.Summaries[calleeID]
		if !ok {
			continue
		}
		if why, esc := cs.Escapes[-1]; esc && len(recvOrigins) > 0 {
			t.cfg.sinkCall(recvOrigins, calleeID, why, call.Pos())
		}
		for i, arg := range call.Args {
			why, esc := cs.Escapes[i]
			if !esc {
				continue
			}
			if origins := t.origins(arg); len(origins) > 0 {
				t.cfg.sinkCall(origins, calleeID, why, arg.Pos())
			}
		}
	}
}

// sinkGoCapture reports tainted objects referenced inside a go
// statement's function (literal body or call arguments) that were
// declared outside it.
func (t *taintRun) sinkGoCapture(g *ast.GoStmt) {
	if t.cfg.goCapture == nil {
		return
	}
	info := t.cfg.pkg.TypesInfo
	seen := map[types.Object]bool{}
	ast.Inspect(g.Call, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		origin, tainted := t.tainted[obj]
		if !tainted || seen[obj] {
			return true
		}
		// Declared inside the go statement (e.g. the goroutine's own
		// parameter shadowing a tainted name) → not a capture.
		if containsPos(g, obj.Pos()) {
			return true
		}
		seen[obj] = true
		t.cfg.goCapture([]taintOrigin{origin}, g, obj)
		return true
	})
}

// isPackageLevelVar reports whether obj is a package-scoped variable.
func isPackageLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}
